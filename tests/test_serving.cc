// Serving-layer tests: batcher coalescing must be invisible (responses
// byte-identical to sequential execution), admission control must reject
// with the typed statuses, deadlines must expire, shutdown must drain —
// and the whole thing must hold up under a TSan-covered mixed load over
// shared indexes (the Serving* filter in scripts/check.sh's TSan stage).
#include "serving/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>

#include "index/concurrent_ha_index.h"
#include "index/dynamic_ha_index.h"
#include "index/linear_scan.h"
#include "serving/load_gen.h"
#include "test_util.h"

namespace hamming::serving {
namespace {

using testutil::RandomCodes;

// Shared dataset + indexes for engine tests. StaticHA is excluded on
// purpose: its lazily rebuilt group cache makes the *first* post-build
// Search thread-unsafe, which is a documented index-level caveat, not a
// serving-layer one.
struct ServingFixture {
  std::vector<BinaryCode> codes;
  LinearScanIndex linear;
  DynamicHAIndex dha;

  explicit ServingFixture(std::size_t n = 800, std::size_t bits = 64,
                          uint64_t seed = 7) {
    codes = RandomCodes(n, bits, seed, /*clusters=*/8);
    EXPECT_TRUE(linear.Build(codes).ok());
    EXPECT_TRUE(dha.Build(codes).ok());
  }

  std::vector<const HammingIndex*> Indexes() const {
    return {&linear, &dha};
  }
};

TEST(ServingBatch, CoalescedRangeResultsByteIdenticalToSequential) {
  ServingFixture fx;
  QueryEngineOptions opts;
  opts.num_workers = 1;  // one worker => maximal coalescing pressure
  opts.max_batch = 64;
  opts.batch_linger = std::chrono::microseconds(20000);
  QueryEngine engine(fx.Indexes(), opts);
  ASSERT_TRUE(engine.Start().ok());

  auto queries = RandomCodes(64, 64, /*seed=*/21, /*clusters=*/8);
  std::vector<std::future<ServeResult>> futures;
  for (const auto& q : queries) {
    auto got = engine.Submit(QueryRequest::Range(q, 3), /*index_id=*/0);
    ASSERT_TRUE(got.ok()) << got.status();
    futures.push_back(std::move(*got));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult r = futures[i].get();
    ASSERT_TRUE(r.response.status.ok()) << r.response.status;
    // Sequential reference: the same query, alone, through the same
    // batch entry point.
    QueryRequest req = QueryRequest::Range(queries[i], 3);
    QueryResponse ref;
    ASSERT_TRUE(fx.linear.SearchBatch({&req, 1}, {&ref, 1}).ok());
    EXPECT_EQ(r.response.ids, ref.ids) << "query " << i;
    EXPECT_EQ(r.response.has_distances, ref.has_distances);
    EXPECT_EQ(r.response.distances, ref.distances) << "query " << i;
    EXPECT_GE(r.batch_size, 1u);
  }
  ServingCounters c = engine.counters();
  EXPECT_EQ(c.accepted, queries.size());
  EXPECT_EQ(c.batched_queries, queries.size());
  // The single lingering worker must have coalesced: strictly fewer
  // index calls than queries.
  EXPECT_LT(c.batches, queries.size());
  engine.Shutdown();
}

TEST(ServingBatch, KnnCoalescingMatchesScalar) {
  ServingFixture fx;
  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 16;
  opts.batch_linger = std::chrono::microseconds(5000);
  QueryEngine engine(fx.Indexes(), opts);
  ASSERT_TRUE(engine.Start().ok());

  auto queries = RandomCodes(32, 64, /*seed=*/33, /*clusters=*/8);
  std::vector<std::future<ServeResult>> futures;
  for (const auto& q : queries) {
    auto got = engine.Submit(QueryRequest::Knn(q, 7), /*index_id=*/1);
    ASSERT_TRUE(got.ok()) << got.status();
    futures.push_back(std::move(*got));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResult r = futures[i].get();
    ASSERT_TRUE(r.response.status.ok()) << r.response.status;
    auto scalar = fx.dha.Knn(queries[i], 7);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(r.response.neighbors, *scalar) << "query " << i;
  }
  engine.Shutdown();
}

TEST(ServingAdmission, QueueFullRejectsWithResourceExhausted) {
  ServingFixture fx(64);
  QueryEngineOptions opts;
  opts.queue_capacity = 4;
  QueryEngine engine(fx.Indexes(), opts);
  // Not started yet: the queue can only fill.
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 4; ++i) {
    auto got = engine.Submit(QueryRequest::Range(fx.codes[i], 2));
    ASSERT_TRUE(got.ok()) << i;
    futures.push_back(std::move(*got));
  }
  auto overflow = engine.Submit(QueryRequest::Range(fx.codes[0], 2));
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsResourceExhausted());
  EXPECT_EQ(engine.counters().rejected_queue_full, 1u);

  // Workers drain the admitted four.
  ASSERT_TRUE(engine.Start().ok());
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().response.status.ok());
  }
  engine.Shutdown();
}

TEST(ServingAdmission, LatencyBudgetShedsUnderBacklog) {
  ServingFixture fx(64);
  QueryEngineOptions opts;
  opts.latency_budget = std::chrono::microseconds(1000);
  QueryEngine engine(fx.Indexes(), opts);
  // One queued request (shedding requires a non-empty queue: an idle
  // engine with a stale EWMA must not refuse work).
  auto first = engine.Submit(QueryRequest::Range(fx.codes[0], 2));
  ASSERT_TRUE(first.ok());
  engine.SetQueueWaitEwmaForTest(50000.0);  // 50 ms >> 1 ms budget
  auto shed = engine.Submit(QueryRequest::Range(fx.codes[1], 2));
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  EXPECT_EQ(engine.counters().rejected_latency, 1u);

  ASSERT_TRUE(engine.Start().ok());
  EXPECT_TRUE(first->get().response.status.ok());
  engine.Shutdown();
}

TEST(ServingDeadline, QueuedExpiryCompletesWithDeadlineExceeded) {
  ServingFixture fx(64);
  QueryEngine engine(fx.Indexes(), QueryEngineOptions{});
  const auto past = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(5);
  auto got = engine.Submit(QueryRequest::Range(fx.codes[0], 2),
                           /*index_id=*/0, past);
  ASSERT_TRUE(got.ok());  // admission accepts; expiry happens in service
  ASSERT_TRUE(engine.Start().ok());
  ServeResult r = got->get();
  EXPECT_TRUE(r.response.status.IsDeadlineExceeded()) << r.response.status;
  EXPECT_TRUE(r.response.ids.empty());
  EXPECT_EQ(engine.counters().deadline_expired, 1u);
  engine.Shutdown();
}

TEST(ServingDeadline, GenerousDeadlineServesNormally) {
  ServingFixture fx(64);
  QueryEngine engine(fx.Indexes(), QueryEngineOptions{});
  ASSERT_TRUE(engine.Start().ok());
  auto got = engine.Serve(QueryRequest::Range(fx.codes[3], 2), /*index_id=*/0,
                          /*timeout=*/std::chrono::microseconds(10'000'000));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->response.status.ok());
  EXPECT_GE(got->batch_size, 1u);
  // Queue wait is stamped into the per-query stats.
  EXPECT_EQ(got->response.stats.serving_queue_nanos,
            static_cast<uint64_t>(got->queue_wait.count()));
  engine.Shutdown();
}

TEST(ServingShutdown, DrainsQueuedRequestsThenRejects) {
  ServingFixture fx(64);
  QueryEngine engine(fx.Indexes(), QueryEngineOptions{});
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    auto got = engine.Submit(QueryRequest::Range(fx.codes[i], 2));
    ASSERT_TRUE(got.ok());
    futures.push_back(std::move(*got));
  }
  ASSERT_TRUE(engine.Start().ok());
  engine.Shutdown();  // must serve all 8 before joining
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().response.status.ok());
  }
  auto late = engine.Submit(QueryRequest::Range(fx.codes[0], 2));
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsResourceExhausted());
}

TEST(ServingShutdown, NeverStartedFailsPendingFutures) {
  ServingFixture fx(64);
  auto engine = std::make_unique<QueryEngine>(fx.Indexes(),
                                              QueryEngineOptions{});
  auto got = engine->Submit(QueryRequest::Range(fx.codes[0], 2));
  ASSERT_TRUE(got.ok());
  engine->Shutdown();
  EXPECT_TRUE(got->get().response.status.IsResourceExhausted());
}

// Regression: the never-started shutdown drain used to relabel every
// orphan kResourceExhausted, including requests whose deadline had
// already expired — those must complete with kDeadlineExceeded exactly
// as a worker drain would report them.
TEST(ServingShutdown, NeverStartedExpiredDeadlineGetsDeadlineExceeded) {
  ServingFixture fx(64);
  auto engine = std::make_unique<QueryEngine>(fx.Indexes(),
                                              QueryEngineOptions{});
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  auto expired = engine->Submit(QueryRequest::Range(fx.codes[0], 2),
                                /*index_id=*/0, past);
  ASSERT_TRUE(expired.ok());  // admission accepts; expiry is a drain event
  const auto far =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  auto fresh = engine->Submit(QueryRequest::Range(fx.codes[1], 2),
                              /*index_id=*/0, far);
  ASSERT_TRUE(fresh.ok());
  engine->Shutdown();
  ServeResult r_expired = expired->get();
  EXPECT_TRUE(r_expired.response.status.IsDeadlineExceeded())
      << r_expired.response.status;
  EXPECT_TRUE(r_expired.response.ids.empty());
  ServeResult r_fresh = fresh->get();
  EXPECT_TRUE(r_fresh.response.status.IsResourceExhausted())
      << r_fresh.response.status;
  EXPECT_EQ(engine->counters().deadline_expired, 1u);
}

TEST(ServingAdmission, BadIndexIdRejected) {
  ServingFixture fx(64);
  QueryEngine engine(fx.Indexes(), QueryEngineOptions{});
  auto got = engine.Submit(QueryRequest::Range(fx.codes[0], 2),
                           /*index_id=*/99);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsInvalidArgument());
}

// The TSan centerpiece: many client threads, mixed kinds, both shared
// indexes, deadlines sprinkled in, plus a metrics registry recording
// concurrently — every completed range response is verified against a
// concurrent scalar Search on the same shared index.
TEST(ServingStress, MixedLoadOverSharedIndexes) {
  ServingFixture fx(600);
  obs::MetricsRegistry metrics;
  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.max_batch = 8;
  opts.queue_capacity = 4096;
  opts.batch_linger = std::chrono::microseconds(200);
  opts.metrics = &metrics;
  QueryEngine engine(fx.Indexes(), opts);
  ASSERT_TRUE(engine.Start().ok());

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 60;
  std::atomic<uint64_t> ok_count{0}, expired_count{0}, mismatch{0};
  {
    std::vector<Thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(1000 + c);
        for (std::size_t i = 0; i < kPerClient; ++i) {
          const auto& q = fx.codes[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<int64_t>(fx.codes.size()) - 1))];
          const auto index_id =
              static_cast<std::size_t>(rng.UniformInt(0, 1));
          const bool knn = rng.Bernoulli(0.3);
          QueryRequest req = knn ? QueryRequest::Knn(q, 5)
                                 : QueryRequest::Range(q, 3);
          // ~1 in 8 requests carries a microscopic deadline that may
          // expire either side of service.
          const auto timeout = rng.Bernoulli(0.125)
                                   ? std::chrono::microseconds(50)
                                   : std::chrono::microseconds(0);
          auto got = engine.Serve(std::move(req), index_id, timeout);
          if (!got.ok()) continue;  // shed; acceptable under load
          if (got->response.status.IsDeadlineExceeded()) {
            ++expired_count;
            continue;
          }
          if (!got->response.status.ok()) continue;
          ++ok_count;
          if (!knn) {
            const HammingIndex* index = fx.Indexes()[index_id];
            auto ref = index->Search(q, 3);
            if (!ref.ok() || got->response.ids != *ref) ++mismatch;
          }
        }
      });
    }
    for (Thread& t : clients) t.join();
  }
  engine.Shutdown();

  EXPECT_EQ(mismatch.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  ServingCounters c = engine.counters();
  // Every accepted request either went through a batched index call or
  // expired while still queued (in-service expiries are batched too).
  EXPECT_GE(c.accepted, c.batched_queries);
  EXPECT_EQ(c.accepted, kClients * kPerClient - c.rejected_latency -
                            c.rejected_queue_full);
  EXPECT_GE(c.batches, 1u);
  auto snap = metrics.Snapshot();
  EXPECT_GT(snap.counters.at("serving.accepted"), 0);
  EXPECT_GT(snap.histograms.at("serving.batch_size").count, 0u);
  EXPECT_GT(snap.histograms.at("serving.e2e_us").count, 0u);
}

// The tentpole integration: the engine serves a ConcurrentHAIndex while
// its owner streams inserts and deletes. Responses must stay well-formed
// (OK status, ids drawn from rows that exist at *some* epoch); the
// byte-level single-epoch consistency proof lives in
// tests/test_concurrent_index.cc.
TEST(ServingStress, ServesConcurrentIndexUnderChurn) {
  auto codes = RandomCodes(512, 64, /*seed=*/11, /*clusters=*/8);
  auto churn_codes = RandomCodes(256, 64, /*seed=*/12, /*clusters=*/8);
  ConcurrentHAIndex index{ConcurrentHAIndexOptions{}};
  ASSERT_TRUE(index.Build(codes).ok());

  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 8;
  opts.batch_linger = std::chrono::microseconds(100);
  QueryEngine engine(&index, opts);
  ASSERT_TRUE(engine.Start().ok());

  std::atomic<bool> stop{false};
  // Mutator owns ids >= 100000: inserts a wave, deletes it, repeats.
  Thread mutator([&] {
    TupleId next = 100000;
    while (!stop.load()) {
      std::vector<std::pair<TupleId, BinaryCode>> wave;
      for (std::size_t i = 0; i < 16; ++i) {
        const TupleId id = next++;
        wave.emplace_back(id, churn_codes[id % churn_codes.size()]);
        ASSERT_TRUE(index.Insert(wave.back().first, wave.back().second).ok());
      }
      for (const auto& [id, code] : wave) {
        ASSERT_TRUE(index.Delete(id, code).ok());
      }
    }
  });

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 40;
  std::atomic<uint64_t> served{0};
  {
    std::vector<Thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(2000 + c);
        for (std::size_t i = 0; i < kPerClient; ++i) {
          const auto& q = codes[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<int64_t>(codes.size()) - 1))];
          auto got = engine.Serve(QueryRequest::Range(q, 3));
          if (!got.ok()) continue;  // shed; acceptable under load
          ASSERT_TRUE(got->response.status.ok()) << got->response.status;
          ++served;
        }
      });
    }
    for (Thread& t : clients) t.join();
  }
  stop.store(true);
  mutator.join();
  engine.Shutdown();

  EXPECT_GT(served.load(), 0u);
  // The mutator actually published epochs while queries were in flight.
  EXPECT_GT(index.epoch(), 0u);
}

TEST(ServingLoadGen, ClosedLoopReportsSaneNumbers) {
  ServingFixture fx(400);
  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 8;
  QueryEngine engine(fx.Indexes(), opts);
  ASSERT_TRUE(engine.Start().ok());
  WorkloadOptions workload;
  workload.h = 3;
  workload.knn_fraction = 0.25;
  LoadReport report = RunClosedLoop(&engine, fx.codes, workload,
                                    /*clients=*/4, /*queries_per_client=*/50);
  engine.Shutdown();
  EXPECT_EQ(report.attempted, 200u);
  EXPECT_EQ(report.completed, 200u);
  EXPECT_EQ(report.latency.count, report.completed);
  EXPECT_GT(report.achieved_qps, 0.0);
  EXPECT_LE(report.latency.p50_us, report.latency.p99_us);
  EXPECT_LE(report.latency.p99_us, report.latency.p999_us);
  EXPECT_LE(report.latency.p999_us, report.latency.max_us);
}

TEST(ServingLoadGen, OpenLoopPacesOfferedLoad) {
  ServingFixture fx(400);
  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 8;
  QueryEngine engine(fx.Indexes(), opts);
  ASSERT_TRUE(engine.Start().ok());
  WorkloadOptions workload;
  workload.h = 3;
  LoadReport report = RunOpenLoop(&engine, fx.codes, workload,
                                  /*offered_qps=*/2000.0,
                                  std::chrono::milliseconds(200));
  engine.Shutdown();
  EXPECT_GT(report.attempted, 0u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.latency.count, report.completed);
  EXPECT_LE(report.latency.p50_us, report.latency.max_us);
}

}  // namespace
}  // namespace hamming::serving

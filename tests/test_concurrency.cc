// Concurrency and distance-reporting tests.
#include <gtest/gtest.h>

#include <atomic>

#include "common/threadpool.h"
#include "index/dynamic_ha_index.h"
#include "index/linear_scan.h"
#include "test_util.h"

namespace hamming {
namespace {

using testutil::RandomCodes;

TEST(Concurrency, ParallelSearchesOnSharedIndexAreConsistent) {
  // A built DHA-Index is immutable under Search; many threads probing it
  // concurrently must all see exact results.
  auto codes = RandomCodes(2000, 32, /*seed=*/3, /*clusters=*/8);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  auto queries = RandomCodes(64, 32, /*seed=*/4, /*clusters=*/8);
  std::vector<std::vector<TupleId>> expect(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expect[q] = Sorted(*truth.Search(queries[q], 3));
  }

  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  ParallelFor(&pool, queries.size() * 8, [&](std::size_t i) {
    std::size_t q = i % queries.size();
    auto got = index.Search(queries[q], 3);
    if (!got.ok() || Sorted(*got) != expect[q]) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, ParallelSearchesOnStaticIndex) {
  // The SHA group cache is rebuilt lazily; force it before threading.
  auto codes = RandomCodes(1000, 32, /*seed=*/5, /*clusters=*/8);
  StaticHAIndex index(StaticHAIndexOptions{8});
  ASSERT_TRUE(index.Build(codes).ok());
  (void)index.Search(codes[0], 3);  // warm the lazy group cache
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());

  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  ParallelFor(&pool, 200, [&](std::size_t i) {
    const auto& q = codes[(i * 37) % codes.size()];
    auto got = index.Search(q, 3);
    auto expect = truth.Search(q, 3);
    if (!got.ok() || Sorted(*got) != Sorted(*expect)) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SearchWithDistances, ReportsExactDistances) {
  auto codes = RandomCodes(500, 32, /*seed=*/7, /*clusters=*/8);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  auto queries = RandomCodes(10, 32, /*seed=*/8, /*clusters=*/8);
  for (const auto& q : queries) {
    auto got = index.SearchWithDistances(q, 4).ValueOrDie();
    auto plain = Sorted(*index.Search(q, 4));
    std::vector<TupleId> ids;
    for (const auto& [id, dist] : got) {
      EXPECT_EQ(dist, codes[id].Distance(q)) << "id " << id;
      EXPECT_LE(dist, 4u);
      ids.push_back(id);
    }
    EXPECT_EQ(Sorted(ids), plain);
  }
}

TEST(SearchWithDistances, CoversInsertBuffer) {
  DynamicHAIndexOptions opts;
  opts.insert_flush_threshold = 1000;
  DynamicHAIndex index(opts);
  auto codes = RandomCodes(50, 32, /*seed=*/9);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ASSERT_TRUE(index.Insert(static_cast<TupleId>(i), codes[i]).ok());
  }
  auto got = index.SearchWithDistances(codes[7], 0).ValueOrDie();
  ASSERT_FALSE(got.empty());
  bool found = false;
  for (const auto& [id, dist] : got) {
    if (id == 7) {
      found = true;
      EXPECT_EQ(dist, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SearchWithDistances, LeaflessRejected) {
  DynamicHAIndexOptions opts;
  opts.store_tuple_ids = false;
  DynamicHAIndex index(opts);
  auto codes = RandomCodes(20, 32);
  ASSERT_TRUE(index.Build(codes).ok());
  EXPECT_TRUE(
      index.SearchWithDistances(codes[0], 3).status().IsNotImplemented());
}

}  // namespace
}  // namespace hamming

#include "join/centralized_join.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hamming {
namespace {

TEST(CentralizedJoin, PaperExampleJoin) {
  // Example 1: h-join(R, S) with h = 3 gives
  // {(r0,t0),(r0,t3),(r0,t4),(r0,t6),(r1,t0),(r1,t3),(r1,t4),(r1,t6),
  //  (r2,t3)}.
  auto s = testutil::PaperTableS();
  auto r = testutil::PaperTableR();
  auto pairs = NestedLoopsJoin(r, s, 3);
  NormalizePairs(&pairs);
  std::vector<JoinPair> expected{{0, 0}, {0, 3}, {0, 4}, {0, 6}, {1, 0},
                                 {1, 3}, {1, 4}, {1, 6}, {2, 3}};
  EXPECT_EQ(pairs, expected);
}

TEST(CentralizedJoin, JoinIsSymmetric) {
  // Footnote 1: h-join(R,S) = h-join(S,R) up to pair orientation.
  auto s = testutil::RandomCodes(80, 32, /*seed=*/2, /*clusters=*/6);
  auto r = testutil::RandomCodes(60, 32, /*seed=*/3, /*clusters=*/6);
  auto rs = NestedLoopsJoin(r, s, 4);
  auto sr = NestedLoopsJoin(s, r, 4);
  std::vector<JoinPair> flipped;
  for (const auto& p : sr) flipped.push_back({p.s, p.r});
  NormalizePairs(&rs);
  NormalizePairs(&flipped);
  EXPECT_EQ(rs, flipped);
}

TEST(CentralizedJoin, IndexProbeMatchesNestedLoopsForEveryIndex) {
  auto s = testutil::RandomCodes(120, 32, /*seed=*/21, /*clusters=*/8);
  auto r = testutil::RandomCodes(90, 32, /*seed=*/22, /*clusters=*/8);
  auto expected = NestedLoopsJoin(r, s, 3);
  NormalizePairs(&expected);
  for (const auto& name : testutil::AllIndexNames()) {
    auto index = testutil::MakeIndex(name);
    auto got = IndexProbeJoin(index.get(), r, s, 3);
    ASSERT_TRUE(got.ok()) << name;
    NormalizePairs(&*got);
    EXPECT_EQ(*got, expected) << name;
  }
}

TEST(CentralizedJoin, EmptyInputs) {
  auto r = testutil::RandomCodes(10, 32);
  EXPECT_TRUE(NestedLoopsJoin({}, r, 3).empty());
  EXPECT_TRUE(NestedLoopsJoin(r, {}, 3).empty());
}

TEST(CentralizedJoin, SelfJoinContainsDiagonal) {
  auto r = testutil::RandomCodes(40, 32, /*seed=*/8);
  auto pairs = NestedLoopsJoin(r, r, 0);
  // Every tuple joins with itself at h = 0.
  std::size_t diagonal = 0;
  for (const auto& p : pairs) {
    if (p.r == p.s) ++diagonal;
  }
  EXPECT_EQ(diagonal, 40u);
}

TEST(CentralizedJoin, NormalizeDeduplicates) {
  std::vector<JoinPair> pairs{{1, 2}, {1, 2}, {0, 5}};
  NormalizePairs(&pairs);
  EXPECT_EQ(pairs, (std::vector<JoinPair>{{0, 5}, {1, 2}}));
}

}  // namespace
}  // namespace hamming

// Structural tests for the PATRICIA radix-tree index.
#include "index/radix_tree.h"

#include <gtest/gtest.h>

#include "index/linear_scan.h"
#include "test_util.h"

namespace hamming {
namespace {

using testutil::RandomCodes;

TEST(RadixTree, PathCompressionBoundsNodeCount) {
  // A PATRICIA trie over k distinct keys has at most 2k - 1 nodes.
  auto codes = RandomCodes(1000, 32, /*seed=*/3);
  RadixTreeIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  EXPECT_LE(index.NodeCount(), 2 * codes.size() - 1);
  EXPECT_GE(index.NodeCount(), 1u);
}

TEST(RadixTree, SingleCodeIsOneNode) {
  RadixTreeIndex index;
  auto code = BinaryCode::FromString("10110").ValueOrDie();
  ASSERT_TRUE(index.Insert(0, code).ok());
  EXPECT_EQ(index.NodeCount(), 1u);
  auto got = index.Search(code, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::vector<TupleId>{0});
}

TEST(RadixTree, PaperFigure1Example) {
  // Figure 1's radix tree over Table 2a. The example query from
  // Example 3: tq = "110010110", h = 2 — t0 and t1 are pruned at their
  // shared "001" prefix.
  auto codes = testutil::PaperTableS();
  RadixTreeIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  auto tq = BinaryCode::FromString("110010110").ValueOrDie();
  auto got = index.Search(tq, 2);
  ASSERT_TRUE(got.ok());
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  EXPECT_EQ(Sorted(*got), Sorted(*truth.Search(tq, 2)));
  for (TupleId id : *got) {
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, 1u);
  }
}

TEST(RadixTree, DeleteMergesSingleChildChains) {
  RadixTreeIndex index;
  auto a = BinaryCode::FromString("00000000").ValueOrDie();
  auto b = BinaryCode::FromString("00001111").ValueOrDie();
  auto c = BinaryCode::FromString("11110000").ValueOrDie();
  ASSERT_TRUE(index.Insert(0, a).ok());
  ASSERT_TRUE(index.Insert(1, b).ok());
  ASSERT_TRUE(index.Insert(2, c).ok());
  std::size_t before = index.NodeCount();
  ASSERT_TRUE(index.Delete(1, b).ok());
  EXPECT_LT(index.NodeCount(), before);
  // Remaining codes still findable.
  EXPECT_EQ(Sorted(*index.Search(a, 0)), std::vector<TupleId>{0});
  EXPECT_EQ(Sorted(*index.Search(c, 0)), std::vector<TupleId>{2});
  // Deleting the rest empties the tree.
  ASSERT_TRUE(index.Delete(0, a).ok());
  ASSERT_TRUE(index.Delete(2, c).ok());
  EXPECT_EQ(index.NodeCount(), 0u);
  EXPECT_EQ(index.size(), 0u);
}

TEST(RadixTree, ChurnStaysExact) {
  RadixTreeIndex index;
  LinearScanIndex truth;
  auto codes = RandomCodes(300, 24, /*seed=*/7, /*clusters=*/6);
  Rng rng(9);
  std::vector<bool> present(codes.size(), false);
  for (int op = 0; op < 1500; ++op) {
    TupleId id = static_cast<TupleId>(
        rng.UniformInt(0, static_cast<int64_t>(codes.size()) - 1));
    if (present[id]) {
      ASSERT_TRUE(index.Delete(id, codes[id]).ok()) << op;
      ASSERT_TRUE(truth.Delete(id, codes[id]).ok());
      present[id] = false;
    } else {
      ASSERT_TRUE(index.Insert(id, codes[id]).ok());
      ASSERT_TRUE(truth.Insert(id, codes[id]).ok());
      present[id] = true;
    }
    if (op % 97 == 0) {
      const BinaryCode& q = codes[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(codes.size()) - 1))];
      auto got = index.Search(q, 2);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Sorted(*got), Sorted(*truth.Search(q, 2))) << "op " << op;
    }
  }
}

TEST(RadixTree, WorstCaseAlternatingPrefixes) {
  // Codes differing in the very first bit split at the root — the
  // prefix-sensitivity weakness the HA-Index addresses. Still exact.
  std::vector<BinaryCode> codes;
  codes.push_back(BinaryCode::FromString("011111111").ValueOrDie());
  codes.push_back(BinaryCode::FromString("111111111").ValueOrDie());
  RadixTreeIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  auto got = index.Search(codes[0], 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(*got), (std::vector<TupleId>{0, 1}));
}

}  // namespace
}  // namespace hamming

#include "code/gray.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace hamming {
namespace {

TEST(Gray, EncodeDecodeRoundTripSmall) {
  // All 3-bit values: gray(0..7) = 000,001,011,010,110,111,101,100.
  const char* expected[] = {"000", "001", "011", "010",
                            "110", "111", "101", "100"};
  for (uint64_t v = 0; v < 8; ++v) {
    auto rank = BinaryCode::FromUint64(v, 3).ValueOrDie();
    BinaryCode gray = GrayEncode(rank);
    EXPECT_EQ(gray.ToString(), expected[v]) << "v=" << v;
    EXPECT_EQ(GrayRank(gray), rank);
  }
}

TEST(Gray, RoundTripRandomWide) {
  Rng rng(23);
  for (std::size_t bits : {5u, 32u, 64u, 65u, 130u, 512u}) {
    for (int trial = 0; trial < 30; ++trial) {
      BinaryCode code(bits);
      for (std::size_t i = 0; i < bits; ++i) {
        code.SetBit(i, rng.Bernoulli(0.5));
      }
      EXPECT_EQ(GrayEncode(GrayRank(code)), code) << "bits=" << bits;
      EXPECT_EQ(GrayRank(GrayEncode(code)), code) << "bits=" << bits;
    }
  }
}

TEST(Gray, ConsecutiveRanksDifferByOneBit) {
  // Definition 5: consecutive codes in Gray order differ in exactly one
  // bit. Check across a word boundary too.
  for (std::size_t bits : {8u, 64u, 66u}) {
    BinaryCode prev;
    for (uint64_t v = 0; v < 300; ++v) {
      auto rank = BinaryCode::FromUint64(v, std::min<std::size_t>(bits, 64))
                      .ValueOrDie();
      // Widen to `bits` by prefixing zeros.
      BinaryCode wide(bits);
      for (std::size_t i = 0; i < rank.size(); ++i) {
        wide.SetBit(bits - rank.size() + i, rank.GetBit(i));
      }
      BinaryCode gray = GrayEncode(wide);
      if (v > 0) {
        EXPECT_EQ(gray.Distance(prev), 1u) << "v=" << v << " bits=" << bits;
      }
      prev = gray;
    }
  }
}

TEST(Gray, RankOrderMatchesIntegerOrder) {
  // Sorting 6-bit codes by Gray rank must equal sorting by decoded value.
  std::vector<BinaryCode> codes;
  for (uint64_t v = 0; v < 64; ++v) {
    codes.push_back(GrayEncode(BinaryCode::FromUint64(v, 6).ValueOrDie()));
  }
  Rng rng(5);
  rng.Shuffle(&codes);
  std::sort(codes.begin(), codes.end(), GrayLess());
  for (uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(GrayRank(codes[v]),
              BinaryCode::FromUint64(v, 6).ValueOrDie());
  }
}

TEST(Gray, SortIdsProducesGrayOrder) {
  Rng rng(31);
  std::vector<BinaryCode> codes;
  for (int i = 0; i < 200; ++i) {
    BinaryCode c(32);
    for (std::size_t b = 0; b < 32; ++b) c.SetBit(b, rng.Bernoulli(0.5));
    codes.push_back(c);
  }
  std::vector<uint32_t> ids(codes.size());
  std::iota(ids.begin(), ids.end(), 0);
  GraySortIds(codes, &ids);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LE(GrayRank(codes[ids[i - 1]]).Compare(GrayRank(codes[ids[i]])), 0);
  }
}

TEST(Gray, SortedNeighborsShareMoreBitsThanRandomPairs) {
  // Proposition 2 (clustering): on clustered code distributions — the
  // kind similarity hashing produces — the average Hamming distance
  // between Gray-adjacent codes is well below the random-pair average.
  Rng rng(37);
  std::vector<BinaryCode> centers;
  for (int c = 0; c < 12; ++c) {
    BinaryCode center(32);
    for (std::size_t b = 0; b < 32; ++b) center.SetBit(b, rng.Bernoulli(0.5));
    centers.push_back(center);
  }
  std::vector<BinaryCode> codes;
  for (int i = 0; i < 500; ++i) {
    BinaryCode c = centers[static_cast<std::size_t>(rng.UniformInt(0, 11))];
    for (int f = 0; f < 3; ++f) {
      if (rng.Bernoulli(0.7)) {
        c.FlipBit(static_cast<std::size_t>(rng.UniformInt(0, 31)));
      }
    }
    codes.push_back(c);
  }
  std::vector<uint32_t> ids(codes.size());
  std::iota(ids.begin(), ids.end(), 0);
  GraySortIds(codes, &ids);
  double adjacent = 0.0;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    adjacent += static_cast<double>(codes[ids[i - 1]].Distance(codes[ids[i]]));
  }
  adjacent /= static_cast<double>(ids.size() - 1);
  double random = 0.0;
  for (std::size_t i = 0; i < 499; ++i) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 499));
    std::size_t b = static_cast<std::size_t>(rng.UniformInt(0, 499));
    random += static_cast<double>(codes[a].Distance(codes[b]));
  }
  random /= 499.0;
  EXPECT_LT(adjacent, random * 0.75)
      << "adjacent=" << adjacent << " random=" << random;
}

TEST(Gray, PaperSortExample) {
  // Section 4.4: Table 2's tuples sorted by Gray order (descending in the
  // paper's wording) group t0 with t1, t2 with t7, t3 with t5 as
  // neighbours. We verify the clustering pairs are adjacent under our
  // ascending order (adjacency is direction-invariant).
  const char* rows[] = {"001001010", "001011101", "011001100", "101001010",
                        "101110110", "101011101", "101101010", "111001100"};
  std::vector<BinaryCode> codes;
  for (const char* r : rows) {
    codes.push_back(BinaryCode::FromString(r).ValueOrDie());
  }
  std::vector<uint32_t> ids(codes.size());
  std::iota(ids.begin(), ids.end(), 0);
  GraySortIds(codes, &ids);
  auto position = [&ids](uint32_t id) {
    return std::find(ids.begin(), ids.end(), id) - ids.begin();
  };
  // t0/t1 and t2/t7 must be adjacent after Gray sorting.
  EXPECT_EQ(std::abs(position(0) - position(1)), 1);
  EXPECT_EQ(std::abs(position(2) - position(7)), 1);
}

}  // namespace
}  // namespace hamming

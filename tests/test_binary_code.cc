#include "code/binary_code.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hamming {
namespace {

TEST(BinaryCode, ParsesAndPrints) {
  auto code = BinaryCode::FromString("101100010");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code->size(), 9u);
  EXPECT_EQ(code->ToString(), "101100010");
}

TEST(BinaryCode, IgnoresWhitespaceInParse) {
  auto code = BinaryCode::FromString("001 001 010");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code->ToString(), "001001010");
}

TEST(BinaryCode, RejectsInvalidCharacters) {
  EXPECT_TRUE(BinaryCode::FromString("01x").status().IsInvalidArgument());
}

TEST(BinaryCode, RejectsOverlongInput) {
  std::string bits(513, '1');
  EXPECT_TRUE(BinaryCode::FromString(bits).status().IsOutOfRange());
}

TEST(BinaryCode, BitAccessors) {
  auto code = BinaryCode::FromString("1010").ValueOrDie();
  EXPECT_TRUE(code.GetBit(0));
  EXPECT_FALSE(code.GetBit(1));
  EXPECT_TRUE(code.GetBit(2));
  EXPECT_FALSE(code.GetBit(3));
  code.SetBit(1, true);
  EXPECT_EQ(code.ToString(), "1110");
  code.FlipBit(0);
  EXPECT_EQ(code.ToString(), "0110");
}

TEST(BinaryCode, PaperExampleDistance) {
  // Example 1: tq = "101100010", h = 3 selects {t0, t3, t4, t6}.
  auto tq = BinaryCode::FromString("101100010").ValueOrDie();
  const char* table_s[] = {"001001010", "001011101", "011001100",
                           "101001010", "101110110", "101011101",
                           "101101010", "111001100"};
  std::vector<int> qualifying;
  for (int i = 0; i < 8; ++i) {
    auto t = BinaryCode::FromString(table_s[i]).ValueOrDie();
    if (t.Distance(tq) <= 3) qualifying.push_back(i);
  }
  EXPECT_EQ(qualifying, (std::vector<int>{0, 3, 4, 6}));
}

TEST(BinaryCode, DistanceIsSymmetricAndZeroOnSelf) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    BinaryCode a(64), b(64);
    for (std::size_t i = 0; i < 64; ++i) {
      a.SetBit(i, rng.Bernoulli(0.5));
      b.SetBit(i, rng.Bernoulli(0.5));
    }
    EXPECT_EQ(a.Distance(a), 0u);
    EXPECT_EQ(a.Distance(b), b.Distance(a));
  }
}

TEST(BinaryCode, DistanceTriangleInequality) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    BinaryCode a(96), b(96), c(96);
    for (std::size_t i = 0; i < 96; ++i) {
      a.SetBit(i, rng.Bernoulli(0.5));
      b.SetBit(i, rng.Bernoulli(0.5));
      c.SetBit(i, rng.Bernoulli(0.5));
    }
    EXPECT_LE(a.Distance(c), a.Distance(b) + b.Distance(c));
  }
}

TEST(BinaryCode, WithinDistanceMatchesDistance) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    BinaryCode a(128), b(128);
    for (std::size_t i = 0; i < 128; ++i) {
      a.SetBit(i, rng.Bernoulli(0.5));
      b.SetBit(i, rng.Bernoulli(0.5));
    }
    std::size_t d = a.Distance(b);
    EXPECT_TRUE(a.WithinDistance(b, d));
    if (d > 0) {
      EXPECT_FALSE(a.WithinDistance(b, d - 1));
    }
  }
}

TEST(BinaryCode, PopCount) {
  EXPECT_EQ(BinaryCode::FromString("0000").ValueOrDie().PopCount(), 0u);
  EXPECT_EQ(BinaryCode::FromString("1111").ValueOrDie().PopCount(), 4u);
  EXPECT_EQ(BinaryCode::FromString("1010101").ValueOrDie().PopCount(), 4u);
}

TEST(BinaryCode, SubstringExtraction) {
  auto code = BinaryCode::FromString("110010110").ValueOrDie();
  EXPECT_EQ(code.Substring(0, 3).ToString(), "110");
  EXPECT_EQ(code.Substring(3, 3).ToString(), "010");
  EXPECT_EQ(code.Substring(6, 3).ToString(), "110");
  EXPECT_EQ(code.Substring(0, 9).ToString(), "110010110");
}

TEST(BinaryCode, SubstringCrossesWordBoundary) {
  BinaryCode code(128);
  code.SetBit(62, true);
  code.SetBit(63, true);
  code.SetBit(64, true);
  EXPECT_EQ(code.Substring(62, 4).ToString(), "1110");
}

TEST(BinaryCode, SubstringAsUint64) {
  auto code = BinaryCode::FromString("10110").ValueOrDie();
  EXPECT_EQ(code.SubstringAsUint64(0, 5), 0b10110u);
  EXPECT_EQ(code.SubstringAsUint64(1, 3), 0b011u);
  EXPECT_EQ(code.SubstringAsUint64(4, 1), 0b0u);
}

TEST(BinaryCode, FromUint64RoundTrip) {
  auto code = BinaryCode::FromUint64(0b1011, 6).ValueOrDie();
  EXPECT_EQ(code.ToString(), "001011");
  EXPECT_EQ(code.SubstringAsUint64(0, 6), 0b1011u);
  EXPECT_TRUE(BinaryCode::FromUint64(1, 65).status().IsInvalidArgument());
}

TEST(BinaryCode, LexicographicCompare) {
  auto a = BinaryCode::FromString("0101").ValueOrDie();
  auto b = BinaryCode::FromString("0110").ValueOrDie();
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
  EXPECT_TRUE(a < b);
}

TEST(BinaryCode, BitwiseOperators) {
  auto a = BinaryCode::FromString("1100").ValueOrDie();
  auto b = BinaryCode::FromString("1010").ValueOrDie();
  EXPECT_EQ((a ^ b).ToString(), "0110");
  EXPECT_EQ((a & b).ToString(), "1000");
  EXPECT_EQ((a | b).ToString(), "1110");
  EXPECT_EQ(a.Not().ToString(), "0011");
}

TEST(BinaryCode, NotMasksTail) {
  // Complement must not set bits beyond the logical length.
  auto a = BinaryCode::FromString("101").ValueOrDie();
  auto n = a.Not();
  EXPECT_EQ(n.ToString(), "010");
  EXPECT_EQ(n.PopCount(), 1u);
}

TEST(BinaryCode, HashDistinguishesLengths) {
  auto a = BinaryCode::FromString("00").ValueOrDie();
  auto b = BinaryCode::FromString("000").ValueOrDie();
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a, b);
}

TEST(BinaryCode, SerializationRoundTrip) {
  Rng rng(17);
  for (std::size_t bits : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u, 512u}) {
    BinaryCode code(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      code.SetBit(i, rng.Bernoulli(0.5));
    }
    BufferWriter w;
    code.Serialize(&w);
    BufferReader r(w.buffer());
    BinaryCode back;
    ASSERT_TRUE(BinaryCode::Deserialize(&r, &back).ok());
    EXPECT_EQ(code, back) << "bits=" << bits;
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BinaryCode, DeserializeRejectsTruncated) {
  BufferWriter w;
  BinaryCode code(64);
  code.SetBit(0, true);
  code.Serialize(&w);
  auto buf = w.buffer();
  buf.resize(buf.size() - 2);
  BufferReader r(buf);
  BinaryCode back;
  EXPECT_TRUE(BinaryCode::Deserialize(&r, &back).IsIOError());
}

TEST(BinaryCode, MaxLengthSupported) {
  std::string bits(512, '0');
  bits[0] = '1';
  bits[511] = '1';
  auto code = BinaryCode::FromString(bits).ValueOrDie();
  EXPECT_EQ(code.size(), 512u);
  EXPECT_EQ(code.PopCount(), 2u);
  EXPECT_TRUE(code.GetBit(511));
}

}  // namespace
}  // namespace hamming

#include "code/masked_code.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hamming {
namespace {

TEST(MaskedCode, ParsesDotNotation) {
  auto p = MaskedCode::FromPattern("..10.1...").ValueOrDie();
  EXPECT_EQ(p.ToString(), "..10.1...");
  EXPECT_EQ(p.size(), 9u);
  EXPECT_EQ(p.EffectiveBits(), 3u);
}

TEST(MaskedCode, RejectsBadCharacters) {
  EXPECT_TRUE(MaskedCode::FromPattern("01x.").status().IsInvalidArgument());
}

TEST(MaskedCode, FlssFromPaperDefinition3) {
  // "....0101." is an FLSS of t0's code "001101010" in the Definition 3
  // example (contiguous positions 4..7 fixed).
  auto t0 = BinaryCode::FromString("001101010").ValueOrDie();
  auto flss = MaskedCode::FromPattern("....0101.").ValueOrDie();
  EXPECT_TRUE(flss.Matches(t0));
  // "101......" is stated NOT to be an FLSS of t0.
  auto not_flss = MaskedCode::FromPattern("101......").ValueOrDie();
  EXPECT_FALSE(not_flss.Matches(t0));
}

TEST(MaskedCode, FlsseqFromPaperDefinition4) {
  // "...0.1.1." is an FLSSeq of t0 = "001001010"; distance to t0 itself
  // is 0 on the effective positions by Definition 4.
  auto t0 = BinaryCode::FromString("001001010").ValueOrDie();
  auto seq = MaskedCode::FromPattern("...0.1.1.").ValueOrDie();
  EXPECT_EQ(seq.PartialDistance(t0), 0u);
  EXPECT_TRUE(seq.Matches(t0));
}

TEST(MaskedCode, PartialDistanceCountsOnlyEffectiveBits) {
  auto p = MaskedCode::FromPattern("1.0.1").ValueOrDie();
  auto a = BinaryCode::FromString("00001").ValueOrDie();  // differs at 0
  EXPECT_EQ(p.PartialDistance(a), 1u);
  auto b = BinaryCode::FromString("01110").ValueOrDie();  // differs at 0,2,4
  EXPECT_EQ(p.PartialDistance(b), 3u);
  auto c = BinaryCode::FromString("11011").ValueOrDie();  // matches 0,2,4
  EXPECT_EQ(p.PartialDistance(c), 0u);
}

TEST(MaskedCode, PartialDistanceIsLowerBound) {
  // Proposition 1 (downward closure): pattern distance never exceeds the
  // full Hamming distance of any code matching the rest arbitrarily.
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    BinaryCode base(48), query(48);
    for (std::size_t i = 0; i < 48; ++i) {
      base.SetBit(i, rng.Bernoulli(0.5));
      query.SetBit(i, rng.Bernoulli(0.5));
    }
    // Restrict base to a random subset of positions and compare.
    std::string s;
    for (std::size_t i = 0; i < 48; ++i) {
      s.push_back(rng.Bernoulli(0.4) ? (base.GetBit(i) ? '1' : '0') : '.');
    }
    auto restricted = MaskedCode::FromPattern(s).ValueOrDie();
    EXPECT_LE(restricted.PartialDistance(query), base.Distance(query));
  }
}

TEST(MaskedCode, AgreementOfTwoCodes) {
  auto a = BinaryCode::FromString("001001010").ValueOrDie();  // t0
  auto b = BinaryCode::FromString("001011101").ValueOrDie();  // t1
  MaskedCode agr = MaskedCode::Agreement(a, b);
  // Positions where t0 and t1 agree: 0,1,2,3,5 -> pattern "0010.1..."
  // bit5: t0=1, t1=1 agree; bit4: 0 vs 1 differ.
  EXPECT_TRUE(agr.Matches(a));
  EXPECT_TRUE(agr.Matches(b));
  EXPECT_EQ(agr.EffectiveBits(), 9u - a.Distance(b));
}

TEST(MaskedCode, AgreementOfMaskedCodes) {
  auto p1 = MaskedCode::FromPattern("10..1").ValueOrDie();
  auto p2 = MaskedCode::FromPattern("1.0.0").ValueOrDie();
  MaskedCode agr = MaskedCode::Agreement(p1, p2);
  // Both effective & equal only at position 0.
  EXPECT_EQ(agr.ToString(), "1....");
}

TEST(MaskedCode, AgreementIsCommutativeAndIdempotent) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    BinaryCode a(32), b(32);
    for (std::size_t i = 0; i < 32; ++i) {
      a.SetBit(i, rng.Bernoulli(0.5));
      b.SetBit(i, rng.Bernoulli(0.5));
    }
    auto ma = MaskedCode::FromFullCode(a);
    auto mb = MaskedCode::FromFullCode(b);
    EXPECT_EQ(MaskedCode::Agreement(ma, mb), MaskedCode::Agreement(mb, ma));
    EXPECT_EQ(MaskedCode::Agreement(ma, ma), ma);
  }
}

TEST(MaskedCode, ResidualRemovesParentPositions) {
  auto child = MaskedCode::FromPattern("0010.1...").ValueOrDie();
  auto parent = MaskedCode::FromPattern("001......").ValueOrDie();
  MaskedCode residual = child.Residual(parent);
  EXPECT_EQ(residual.ToString(), "...0.1...");
  // Residual and parent partition the child's effective positions.
  EXPECT_EQ(residual.EffectiveBits() + parent.EffectiveBits(),
            child.EffectiveBits());
}

TEST(MaskedCode, ResidualPlusParentDistanceEqualsChildDistance) {
  Rng rng(47);
  for (int trial = 0; trial < 200; ++trial) {
    BinaryCode base(40), query(40);
    for (std::size_t i = 0; i < 40; ++i) {
      base.SetBit(i, rng.Bernoulli(0.5));
      query.SetBit(i, rng.Bernoulli(0.5));
    }
    MaskedCode child = MaskedCode::FromFullCode(base);
    // Parent = child restricted to a random subset.
    std::string s;
    for (std::size_t i = 0; i < 40; ++i) {
      s.push_back(rng.Bernoulli(0.5) ? (base.GetBit(i) ? '1' : '0') : '.');
    }
    auto parent = MaskedCode::FromPattern(s).ValueOrDie();
    MaskedCode residual = child.Residual(parent);
    EXPECT_EQ(parent.PartialDistance(query) + residual.PartialDistance(query),
              child.PartialDistance(query));
  }
}

TEST(MaskedCode, CombinedWithMergesPatterns) {
  auto a = MaskedCode::FromPattern("10...").ValueOrDie();
  auto b = MaskedCode::FromPattern("...01").ValueOrDie();
  EXPECT_EQ(a.CombinedWith(b).ToString(), "10.01");
}

TEST(MaskedCode, CompatibleWith) {
  auto a = MaskedCode::FromPattern("10..").ValueOrDie();
  auto b = MaskedCode::FromPattern("1.1.").ValueOrDie();
  auto c = MaskedCode::FromPattern("0...").ValueOrDie();
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_FALSE(a.CompatibleWith(c));
}

TEST(MaskedCode, SerializationRoundTrip) {
  auto p = MaskedCode::FromPattern("..10.1...").ValueOrDie();
  BufferWriter w;
  p.Serialize(&w);
  BufferReader r(w.buffer());
  MaskedCode back;
  ASSERT_TRUE(MaskedCode::Deserialize(&r, &back).ok());
  EXPECT_EQ(p, back);
}

TEST(MaskedCode, AllWildcard) {
  MaskedCode p(16);
  EXPECT_TRUE(p.AllWildcard());
  EXPECT_EQ(p.EffectiveBits(), 0u);
  auto q = MaskedCode::FromPattern("....1...").ValueOrDie();
  EXPECT_FALSE(q.AllWildcard());
}

}  // namespace
}  // namespace hamming

// Cross-implementation correctness: every Hamming index must return
// exactly the linear-scan result set for every query — the central
// invariant of the whole library, swept over index types, thresholds,
// code lengths and data distributions with TEST_P.
#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace hamming {
namespace {

using testutil::MakeIndex;
using testutil::RandomCodes;

// ---------------------------------------------------------------------------
// Exactness sweep: (index name, code bits, clustered?, h)
// ---------------------------------------------------------------------------

using ExactnessParam = std::tuple<std::string, std::size_t, bool, std::size_t>;

std::string ExactnessName(
    const ::testing::TestParamInfo<ExactnessParam>& info) {
  std::string n = std::get<0>(info.param);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n + "_b" + std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) ? "_clustered" : "_uniform") + "_h" +
         std::to_string(std::get<3>(info.param));
}

std::string PlainName(const ::testing::TestParamInfo<std::string>& info) {
  std::string n = info.param;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class IndexExactnessTest : public ::testing::TestWithParam<ExactnessParam> {};

TEST_P(IndexExactnessTest, MatchesLinearScan) {
  const auto& [name, bits, clustered, h] = GetParam();
  auto codes = RandomCodes(600, bits, /*seed=*/1234 + bits + h,
                           clustered ? 16 : 1);
  auto index = MakeIndex(name, /*h_max=*/8);
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(index->Build(codes).ok());
  EXPECT_EQ(index->size(), codes.size());

  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());

  auto queries = RandomCodes(25, bits, /*seed=*/99 + h, clustered ? 16 : 1);
  // Also query with dataset members (guaranteed h=0 hits).
  queries.push_back(codes[0]);
  queries.push_back(codes[codes.size() / 2]);
  // The MH indexes are laid out for h_max = 3 (the paper's setting);
  // beyond that they are approximate with no false positives — the
  // sensitivity to h the paper criticizes in Section 2.
  bool exact = true;
  if ((name == "mh4" || name == "mh10") && h > 3) exact = false;

  for (const auto& q : queries) {
    auto expect = truth.Search(q, h);
    auto got = index->Search(q, h);
    ASSERT_TRUE(got.ok()) << got.status();
    if (exact) {
      EXPECT_EQ(Sorted(*got), Sorted(*expect))
          << name << " bits=" << bits << " h=" << h;
    } else {
      auto sorted_got = Sorted(*got);
      auto sorted_expect = Sorted(*expect);
      EXPECT_TRUE(std::includes(sorted_expect.begin(), sorted_expect.end(),
                                sorted_got.begin(), sorted_got.end()))
          << name << " returned a false positive";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexExactnessTest,
    ::testing::Combine(
        ::testing::Values("linear", "mh4", "mh10", "hengine", "hmsearch",
                          "radix", "sha8", "sha4", "dha", "dha-w4",
                          "dha-w32"),
        ::testing::Values(32u, 64u),
        ::testing::Bool(),
        ::testing::Values(0u, 1u, 3u, 6u)),
    ExactnessName);

// ---------------------------------------------------------------------------
// Dynamic update sweep: insert/delete keep results consistent.
// ---------------------------------------------------------------------------

class IndexUpdateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IndexUpdateTest, DeleteThenReinsertPreservesResults) {
  // Table 4's "update" operation: delete one tuple, insert it back.
  const std::string name = GetParam();
  auto codes = RandomCodes(300, 32, /*seed=*/77, /*clusters=*/8);
  auto index = MakeIndex(name);
  ASSERT_TRUE(index->Build(codes).ok());

  auto q = codes[17];
  auto before = index->Search(q, 3);
  ASSERT_TRUE(before.ok());

  for (TupleId victim : {TupleId{17}, TupleId{200}, TupleId{299}}) {
    ASSERT_TRUE(index->Delete(victim, codes[victim]).ok()) << name;
    auto during = index->Search(q, 3);
    ASSERT_TRUE(during.ok());
    for (TupleId id : *during) EXPECT_NE(id, victim);
    ASSERT_TRUE(index->Insert(victim, codes[victim]).ok());
  }
  auto after = index->Search(q, 3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Sorted(*after), Sorted(*before)) << name;
}

TEST_P(IndexUpdateTest, DeleteMissingTupleFails) {
  const std::string name = GetParam();
  auto codes = RandomCodes(50, 32, /*seed=*/7);
  auto index = MakeIndex(name);
  ASSERT_TRUE(index->Build(codes).ok());
  BinaryCode absent(32);
  absent.SetBit(0, true);
  // Either the id or the code will not match anything indexed.
  Status st = index->Delete(9999, absent);
  EXPECT_FALSE(st.ok()) << name;
}

TEST_P(IndexUpdateTest, IncrementalInsertFindsNewTuples) {
  const std::string name = GetParam();
  auto codes = RandomCodes(200, 32, /*seed=*/31, /*clusters=*/4);
  auto index = MakeIndex(name);
  ASSERT_TRUE(index->Build(codes).ok());

  auto extra = RandomCodes(40, 32, /*seed=*/131, /*clusters=*/4);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        index->Insert(static_cast<TupleId>(1000 + i), extra[i]).ok());
  }
  for (std::size_t i = 0; i < extra.size(); ++i) {
    auto got = index->Search(extra[i], 0);
    ASSERT_TRUE(got.ok());
    bool found = false;
    for (TupleId id : *got) {
      if (id == 1000 + i) found = true;
    }
    EXPECT_TRUE(found) << name << " missing inserted tuple " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexUpdateTest,
    ::testing::Values("linear", "mh4", "mh10", "hengine", "hmsearch",
                      "radix", "sha8", "dha"),
    PlainName);

// ---------------------------------------------------------------------------
// Shared behaviour
// ---------------------------------------------------------------------------

TEST(Indexes, PaperExampleSelect) {
  // Example 1: h-select(tq="101100010", S) with h=3 -> {t0, t3, t4, t6}.
  auto codes = testutil::PaperTableS();
  auto tq = BinaryCode::FromString("101100010").ValueOrDie();
  for (const auto& name : testutil::AllIndexNames()) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok());
    auto got = index->Search(tq, 3);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(Sorted(*got), (std::vector<TupleId>{0, 3, 4, 6})) << name;
  }
}

TEST(Indexes, EmptyIndexReturnsNothing) {
  for (const auto& name : testutil::AllIndexNames()) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build({}).ok()) << name;
    BinaryCode q(32);
    auto got = index->Search(q, 3);
    // Empty index: either empty result or (for length-strict indexes) an
    // accepted empty probe.
    if (got.ok()) {
      EXPECT_TRUE(got->empty()) << name;
    }
  }
}

TEST(Indexes, DuplicateCodesAllReported) {
  std::vector<BinaryCode> codes;
  auto c = BinaryCode::FromString("10110011").ValueOrDie();
  for (int i = 0; i < 5; ++i) codes.push_back(c);
  for (const auto& name : testutil::AllIndexNames()) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok());
    auto got = index->Search(c, 0);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(Sorted(*got), (std::vector<TupleId>{0, 1, 2, 3, 4})) << name;
  }
}

TEST(Indexes, ThresholdCoveringWholeSpaceReturnsEverything) {
  auto codes = RandomCodes(100, 16, /*seed=*/3);
  for (const auto& name : testutil::AllIndexNames()) {
    // MH-k would need 17 segments over 16 bits to stay exact at h = 16.
    if (name == "mh4" || name == "mh10") continue;
    auto index = MakeIndex(name, /*h_max=*/16);
    ASSERT_TRUE(index->Build(codes).ok());
    BinaryCode q(16);
    auto got = index->Search(q, 16);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(got->size(), codes.size()) << name;
  }
}

TEST(Indexes, MemoryAccountingIsPositiveAndOrdered) {
  auto codes = RandomCodes(2000, 32, /*seed=*/5, /*clusters=*/16);
  // The paper's Table 4 ordering: MH-10 uses more memory than MH-4; the
  // HA-Index variants use less than the multi-table baselines.
  auto mh4 = MakeIndex("mh4");
  auto mh10 = MakeIndex("mh10");
  auto dha = MakeIndex("dha");
  ASSERT_TRUE(mh4->Build(codes).ok());
  ASSERT_TRUE(mh10->Build(codes).ok());
  ASSERT_TRUE(dha->Build(codes).ok());
  EXPECT_GT(mh4->Memory().total(), 0u);
  EXPECT_GT(mh10->Memory().total(), mh4->Memory().total());
  EXPECT_LT(dha->Memory().total(), mh4->Memory().total());
}

TEST(Indexes, QueryLengthMismatchRejected) {
  auto codes = RandomCodes(20, 32, /*seed=*/9);
  for (const auto& name : {"mh4", "hengine", "hmsearch", "sha8", "dha"}) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok());
    BinaryCode q(16);
    auto got = index->Search(q, 3);
    EXPECT_FALSE(got.ok()) << name;
  }
}

TEST(Indexes, HEngineRejectsThresholdAboveHmax) {
  auto codes = RandomCodes(20, 32, /*seed=*/9);
  HEngineIndex index(/*h_max=*/3);
  ASSERT_TRUE(index.Build(codes).ok());
  EXPECT_FALSE(index.Search(codes[0], 5).ok());
}

// ---------------------------------------------------------------------------
// Knn on the base interface: the default radius-expanding implementation
// (Search(h) for growing h; first-seen radius = exact distance) must
// agree with LinearScanIndex's batched-kernel override.
// ---------------------------------------------------------------------------

TEST(IndexKnn, DefaultRadiusExpansionMatchesBatchedScan) {
  const std::size_t kK = 9;
  auto codes = RandomCodes(400, 64, /*seed=*/77, /*clusters=*/8);
  LinearScanIndex scan;
  ASSERT_TRUE(scan.Build(codes).ok());
  auto dha = MakeIndex("dha");  // inherits the default Knn
  ASSERT_TRUE(dha->Build(codes).ok());

  auto queries = RandomCodes(10, 64, /*seed=*/5, /*clusters=*/8);
  queries.push_back(codes[3]);  // guaranteed distance-0 hit
  for (const auto& q : queries) {
    auto exact = scan.Knn(q, kK);
    auto via_search = dha->Knn(q, kK);
    ASSERT_TRUE(exact.ok()) << exact.status();
    ASSERT_TRUE(via_search.ok()) << via_search.status();
    ASSERT_EQ(exact->size(), kK);
    ASSERT_EQ(via_search->size(), kK);
    for (std::size_t i = 0; i < kK; ++i) {
      // Same distance profile; ties may order differently, so check the
      // reported distance is each id's true distance.
      EXPECT_EQ((*exact)[i].second, (*via_search)[i].second) << "rank " << i;
      const auto& [id, dist] = (*via_search)[i];
      EXPECT_EQ(codes[id].Distance(q), dist);
    }
  }
}

TEST(IndexKnn, HandlesSmallAndEmptyCases) {
  auto codes = RandomCodes(5, 32, /*seed=*/11);
  for (const char* name : {"linear", "dha"}) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok());
    // k larger than the index: everything comes back, ascending distance.
    auto all = index->Knn(codes[0], 50);
    ASSERT_TRUE(all.ok()) << name;
    EXPECT_EQ(all->size(), codes.size()) << name;
    for (std::size_t i = 1; i < all->size(); ++i) {
      EXPECT_LE((*all)[i - 1].second, (*all)[i].second) << name;
    }
    // k = 0 and empty index return empty results.
    auto none = index->Knn(codes[0], 0);
    ASSERT_TRUE(none.ok()) << name;
    EXPECT_TRUE(none->empty()) << name;
    auto empty = MakeIndex(name);
    ASSERT_TRUE(empty->Build({}).ok());
    auto from_empty = empty->Knn(codes[0], 3);
    ASSERT_TRUE(from_empty.ok()) << name;
    EXPECT_TRUE(from_empty->empty()) << name;
  }
}

TEST(IndexKnn, KAtAndAboveDatasetSizeReturnsAllTuplesOnce) {
  auto codes = RandomCodes(23, 32, /*seed=*/21);
  for (const char* name : {"linear", "dha"}) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok());
    for (std::size_t k : {codes.size(), codes.size() + 1, codes.size() * 4}) {
      auto all = index->Knn(codes[2], k);
      ASSERT_TRUE(all.ok()) << name << " k=" << k;
      ASSERT_EQ(all->size(), codes.size()) << name << " k=" << k;
      std::vector<bool> found(codes.size(), false);
      for (const auto& [id, dist] : *all) {
        ASSERT_LT(id, codes.size()) << name;
        EXPECT_FALSE(found[id]) << name << " duplicate id " << id;
        found[id] = true;
        EXPECT_EQ(codes[id].Distance(codes[2]), dist) << name;
      }
    }
  }
}

TEST(IndexKnn, DistanceTiesAtTheCutStayExact) {
  // Query 0...0; one code at distance 0, two at distance 1, four at
  // distance 2. k = 2 cuts inside the distance-1 tie group and k = 4
  // inside the distance-2 group.
  std::vector<BinaryCode> codes;
  BinaryCode zero(16);
  codes.push_back(zero);
  for (std::size_t pos : {0u, 5u}) {
    BinaryCode c(16);
    c.SetBit(pos, true);
    codes.push_back(c);
  }
  for (std::size_t pos : {1u, 4u, 9u, 13u}) {
    BinaryCode c(16);
    c.SetBit(pos, true);
    c.SetBit(15, true);
    codes.push_back(c);
  }
  for (const char* name : {"linear", "dha"}) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok());
    for (auto [k, want_last] : {std::pair<std::size_t, uint32_t>{2, 1},
                                {3, 1},
                                {4, 2},
                                {6, 2}}) {
      auto got = index->Knn(zero, k);
      ASSERT_TRUE(got.ok()) << name << " k=" << k;
      ASSERT_EQ(got->size(), k) << name << " k=" << k;
      for (std::size_t i = 1; i < got->size(); ++i) {
        EXPECT_LE((*got)[i - 1].second, (*got)[i].second) << name;
      }
      // Distances are exact even for the ties at the cut, and the k-th
      // distance matches the true distance profile (1,1,2,2,2,2 after
      // the distance-0 hit).
      EXPECT_EQ(got->back().second, want_last) << name << " k=" << k;
      for (const auto& [id, dist] : *got) {
        EXPECT_EQ(codes[id].Distance(zero), dist) << name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The batch-first query surface (SearchBatch / KnnBatch): every index —
// native override or looping default — must answer a batch exactly as it
// answers the same queries one at a time, and the per-match distances an
// index reports (has_distances) must be the true distances.
// ---------------------------------------------------------------------------

TEST(BatchApi, SearchBatchMatchesScalarForEveryIndex) {
  auto codes = RandomCodes(500, 64, /*seed=*/314, /*clusters=*/8);
  auto queries = RandomCodes(12, 64, /*seed=*/159, /*clusters=*/8);
  queries.push_back(codes[7]);
  for (const char* name : {"linear", "mh4", "hengine", "hmsearch", "radix",
                           "sha8", "dha"}) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok()) << name;
    for (std::size_t h : {0ul, 2ul, 3ul}) {
      std::vector<QueryRequest> requests;
      for (const auto& q : queries) {
        requests.push_back(QueryRequest::Range(q, h));
      }
      std::vector<QueryResponse> responses(requests.size());
      ASSERT_TRUE(index
                      ->SearchBatch({requests.data(), requests.size()},
                                    {responses.data(), responses.size()})
                      .ok())
          << name;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ASSERT_TRUE(responses[i].status.ok()) << name << " query " << i;
        auto scalar = index->Search(queries[i], h);
        ASSERT_TRUE(scalar.ok()) << name;
        EXPECT_EQ(responses[i].ids, *scalar)
            << name << " h=" << h << " query " << i;
        if (responses[i].has_distances) {
          ASSERT_EQ(responses[i].distances.size(), responses[i].ids.size())
              << name;
          for (std::size_t j = 0; j < responses[i].ids.size(); ++j) {
            EXPECT_EQ(responses[i].distances[j],
                      codes[responses[i].ids[j]].Distance(queries[i]))
                << name << " query " << i << " match " << j;
          }
        }
      }
    }
  }
}

TEST(BatchApi, KnnBatchMatchesScalarKnn) {
  auto codes = RandomCodes(300, 64, /*seed=*/271, /*clusters=*/8);
  auto queries = RandomCodes(8, 64, /*seed=*/828, /*clusters=*/8);
  for (const char* name : {"linear", "dha", "sha8"}) {
    auto index = MakeIndex(name);
    ASSERT_TRUE(index->Build(codes).ok()) << name;
    std::vector<QueryRequest> requests;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      requests.push_back(QueryRequest::Knn(queries[i], 1 + 3 * i));
    }
    std::vector<QueryResponse> responses(requests.size());
    ASSERT_TRUE(index
                    ->KnnBatch({requests.data(), requests.size()},
                               {responses.data(), responses.size()})
                    .ok())
        << name;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok()) << name;
      auto scalar = index->Knn(queries[i], requests[i].k);
      ASSERT_TRUE(scalar.ok()) << name;
      EXPECT_EQ(responses[i].neighbors, *scalar) << name << " query " << i;
    }
  }
}

TEST(BatchApi, MismatchedSpansRejected) {
  auto codes = RandomCodes(32, 32, /*seed=*/4);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  std::vector<QueryRequest> requests(2, QueryRequest::Range(codes[0], 1));
  std::vector<QueryResponse> responses(1);
  EXPECT_TRUE(index
                  .SearchBatch({requests.data(), requests.size()},
                               {responses.data(), responses.size()})
                  .IsInvalidArgument());
  EXPECT_TRUE(index
                  .KnnBatch({requests.data(), requests.size()},
                            {responses.data(), responses.size()})
                  .IsInvalidArgument());
}

TEST(BatchApi, PerRequestFailureDoesNotPoisonTheBatch) {
  auto codes = RandomCodes(64, 32, /*seed=*/6);
  auto dha = MakeIndex("dha");
  ASSERT_TRUE(dha->Build(codes).ok());
  std::vector<QueryRequest> requests;
  requests.push_back(QueryRequest::Range(codes[0], 2));
  requests.push_back(
      QueryRequest::Range(RandomCodes(1, 16, /*seed=*/8)[0], 2));  // bad len
  requests.push_back(QueryRequest::Range(codes[1], 2));
  std::vector<QueryResponse> responses(requests.size());
  ASSERT_TRUE(dha->SearchBatch({requests.data(), requests.size()},
                               {responses.data(), responses.size()})
                  .ok());
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_TRUE(responses[1].status.IsInvalidArgument());
  EXPECT_TRUE(responses[2].status.ok());
  EXPECT_EQ(responses[0].ids, *dha->Search(codes[0], 2));
  EXPECT_EQ(responses[2].ids, *dha->Search(codes[1], 2));
}

// ---------------------------------------------------------------------------
// The geometric (distance-guided) kNN radius expansion: fewer rounds and
// less re-scan waste than the legacy h += 1 walk, with identical results.
// ---------------------------------------------------------------------------

TEST(IndexKnn, GeometricExpansionBoundsRoundsAndRecordsWaste) {
  auto codes = RandomCodes(500, 64, /*seed=*/41, /*clusters=*/8);
  LinearScanIndex truth;
  ASSERT_TRUE(truth.Build(codes).ok());
  auto dha = MakeIndex("dha");  // batch path reports distances
  ASSERT_TRUE(dha->Build(codes).ok());
  auto queries = RandomCodes(8, 64, /*seed=*/43, /*clusters=*/8);
  for (const auto& q : queries) {
    obs::QueryStats stats;
    auto got = dha->Knn(q, 10, &stats);
    ASSERT_TRUE(got.ok());
    auto exact = truth.Knn(q, 10);
    ASSERT_TRUE(exact.ok());
    ASSERT_EQ(got->size(), exact->size());
    for (std::size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].second, (*exact)[i].second) << "rank " << i;
    }
    // Geometric doubling over 64-bit codes: radii 0,1,3,7,15,31,63 — at
    // most 7 rounds, where the legacy walk would take up to (k-th
    // distance + 1) rounds.
    EXPECT_LE(stats.radius_expansions, 7u);
  }
}

TEST(IndexKnn, RescannedResultsCountsRadiusExpansionWaste) {
  // Two codes one bit apart. Knn(zero, 2) needs two rounds (h=0 finds
  // only the exact match), and the second round re-returns it — exactly
  // one re-scanned result.
  BinaryCode zero(32);
  BinaryCode near = zero;
  near.FlipBit(3);
  auto dha = MakeIndex("dha");
  ASSERT_TRUE(dha->Build({zero, near}).ok());
  obs::QueryStats stats;
  auto got = dha->Knn(zero, 2, &stats);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ(stats.radius_expansions, 2u);
  EXPECT_EQ(stats.rescanned_results, 1u);
}

}  // namespace
}  // namespace hamming

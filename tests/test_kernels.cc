// Differential tests for the batched Hamming kernels: every routine must
// agree bit-for-bit with a loop of scalar BinaryCode calls, under both
// the portable and (when available) AVX2 backends.
#include "kernels/hamming_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/threadpool.h"
#include "kernels/code_store.h"
#include "kernels/vertical_code_store.h"
#include "mapreduce/counters.h"
#include "test_util.h"

namespace hamming::kernels {
namespace {

using testutil::RandomCodes;

// Word counts straddling every boundary the kernels branch on.
const std::size_t kLengths[] = {1, 63, 64, 65, 225, 511, 512};

std::vector<Backend> BackendsUnderTest() {
  std::vector<Backend> out = {Backend::kPortable};
  if (Avx2Supported()) out.push_back(Backend::kAvx2);
  if (Avx512Supported()) out.push_back(Backend::kAvx512);
  return out;
}

// Pins a backend for one scope, restoring the previous one on exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : prev_(ActiveBackend()) { SetBackend(b); }
  ~ScopedBackend() { SetBackend(prev_); }

 private:
  Backend prev_;
};

// Pins the layout policy for one scope.
class ScopedLayout {
 public:
  explicit ScopedLayout(LayoutPolicy p) : prev_(ActiveLayoutPolicy()) {
    SetLayoutPolicy(p);
  }
  ~ScopedLayout() { SetLayoutPolicy(prev_); }

 private:
  LayoutPolicy prev_;
};

TEST(CodeStore, RoundTripsCodes) {
  for (std::size_t bits : kLengths) {
    auto codes = RandomCodes(9, bits, /*seed=*/bits);
    auto store = CodeStore::FromCodes(codes);
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store->size(), codes.size());
    EXPECT_EQ(store->bits(), bits);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(store->Get(i), codes[i]) << "bits=" << bits << " i=" << i;
      EXPECT_TRUE(store->Matches(i, codes[i]));
      EXPECT_FALSE(store->Matches(i, codes[(i + 1) % codes.size()]) &&
                   codes[i] != codes[(i + 1) % codes.size()]);
    }
  }
}

TEST(CodeStore, RejectsMixedLengths) {
  std::vector<BinaryCode> codes = {BinaryCode(64), BinaryCode(65)};
  EXPECT_FALSE(CodeStore::FromCodes(codes).ok());
  CodeStore store;
  ASSERT_TRUE(store.Append(BinaryCode(64)).ok());
  EXPECT_FALSE(store.Append(BinaryCode(65)).ok());
}

TEST(CodeStore, PadLanesStayZeroAcrossAppendAndSwapRemove) {
  auto codes = RandomCodes(13, 225, /*seed=*/7);
  CodeStore store;
  for (const auto& c : codes) ASSERT_TRUE(store.Append(c).ok());
  auto check_pads = [&] {
    for (std::size_t w = 0; w < store.words(); ++w) {
      const uint64_t* lane = store.Lane(w);
      for (std::size_t i = store.size(); i < store.stride(); ++i) {
        ASSERT_EQ(lane[i], 0u) << "lane " << w << " pad slot " << i;
      }
    }
  };
  check_pads();
  // Swap-removing from the middle must re-zero the vacated last slot.
  while (store.size() > 1) {
    store.SwapRemove(store.size() / 2);
    check_pads();
  }
}

TEST(CodeStore, SwapRemoveKeepsRemainingCodes) {
  auto codes = RandomCodes(10, 64, /*seed=*/11);
  auto store = CodeStore::FromCodes(codes).ValueOrDie();
  store.SwapRemove(3);  // last code moves into slot 3
  ASSERT_EQ(store.size(), 9u);
  EXPECT_EQ(store.Get(3), codes[9]);
  for (std::size_t i = 0; i < 9; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(store.Get(i), codes[i]);
  }
}

TEST(Kernels, BatchDistanceMatchesScalarAcrossLengthsAndSizes) {
  for (Backend backend : BackendsUnderTest()) {
    ScopedBackend pin(backend);
    for (std::size_t bits : kLengths) {
      // Store sizes 0..9 cross the 8-code block boundary of both paths.
      for (std::size_t n = 0; n <= 9; ++n) {
        auto codes = RandomCodes(n, bits, /*seed=*/1000 + bits + n);
        auto store = CodeStore::FromCodes(codes).ValueOrDie();
        auto query = RandomCodes(1, bits, /*seed=*/2000 + bits + n)[0];
        std::vector<uint32_t> dists;
        BatchDistance(query, store, &dists);
        ASSERT_EQ(dists.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(dists[i], codes[i].Distance(query))
              << BackendName(backend) << " bits=" << bits << " n=" << n
              << " i=" << i;
        }
      }
    }
  }
}

TEST(Kernels, BatchWithinDistanceMatchesScalar) {
  for (Backend backend : BackendsUnderTest()) {
    ScopedBackend pin(backend);
    for (std::size_t bits : kLengths) {
      auto codes = RandomCodes(200, bits, /*seed=*/bits, /*clusters=*/8);
      auto store = CodeStore::FromCodes(codes).ValueOrDie();
      auto query = RandomCodes(1, bits, /*seed=*/5 + bits)[0];
      for (std::size_t h : {0ul, 1ul, 3ul, bits / 4, bits}) {
        std::vector<uint32_t> slots;
        BatchWithinDistance(query, store, h, &slots);
        std::vector<uint32_t> expected;
        for (std::size_t i = 0; i < codes.size(); ++i) {
          if (codes[i].WithinDistance(query, h)) {
            expected.push_back(static_cast<uint32_t>(i));
          }
        }
        EXPECT_EQ(slots, expected)
            << BackendName(backend) << " bits=" << bits << " h=" << h;
      }
    }
  }
}

TEST(Kernels, BatchXorPopcountMatchesScalar) {
  Rng rng(99);
  // Sizes crossing the AVX2 4-word block boundary.
  for (std::size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 17ul, 1000ul}) {
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng.NextWord();
    const uint64_t q = rng.NextWord();
    for (Backend backend : BackendsUnderTest()) {
      ScopedBackend pin(backend);
      std::vector<uint16_t> out(n, 0xabcd);
      BatchXorPopcount(q, values.data(), n, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], std::popcount(values[i] ^ q))
            << BackendName(backend) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Kernels, BatchKnnMatchesSortedScalarDistances) {
  for (Backend backend : BackendsUnderTest()) {
    ScopedBackend pin(backend);
    for (std::size_t bits : {64ul, 225ul}) {
      auto codes = RandomCodes(500, bits, /*seed=*/3 * bits, /*clusters=*/4);
      auto store = CodeStore::FromCodes(codes).ValueOrDie();
      auto query = RandomCodes(1, bits, /*seed=*/17 + bits)[0];
      for (std::size_t k : {0ul, 1ul, 10ul, 500ul, 600ul}) {
        auto got = BatchKnn(query, store, k);
        // Reference: all (distance, slot) pairs sorted, truncated to k.
        std::vector<std::pair<uint32_t, uint32_t>> ref;
        for (std::size_t i = 0; i < codes.size(); ++i) {
          ref.emplace_back(static_cast<uint32_t>(codes[i].Distance(query)),
                           static_cast<uint32_t>(i));
        }
        std::sort(ref.begin(), ref.end());
        ref.resize(std::min(k, ref.size()));
        ASSERT_EQ(got.size(), ref.size())
            << BackendName(backend) << " bits=" << bits << " k=" << k;
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].first, ref[i].second) << "rank " << i;
          EXPECT_EQ(got[i].second, ref[i].first) << "rank " << i;
        }
      }
    }
  }
}

TEST(Kernels, MultiWithinDistanceMatchesScalarLoop) {
  for (Backend backend : BackendsUnderTest()) {
    ScopedBackend pin(backend);
    for (std::size_t bits : {64ul, 225ul}) {
      auto codes = RandomCodes(700, bits, /*seed=*/5 * bits, /*clusters=*/4);
      auto store = CodeStore::FromCodes(codes).ValueOrDie();
      auto queries = RandomCodes(9, bits, /*seed=*/23 + bits, /*clusters=*/3);
      std::vector<const BinaryCode*> qptrs;
      std::vector<std::size_t> radii;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        qptrs.push_back(&queries[q]);
        radii.push_back(q * bits / 12);  // mix of selectivities incl. 0
      }
      std::vector<std::vector<SlotDistance>> hits;
      MultiWithinDistance(store, qptrs.data(), radii.data(), qptrs.size(),
                          &hits);
      ASSERT_EQ(hits.size(), queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        std::vector<SlotDistance> ref;
        for (std::size_t i = 0; i < codes.size(); ++i) {
          auto d = static_cast<uint32_t>(codes[i].Distance(queries[q]));
          if (d <= radii[q]) {
            ref.push_back({static_cast<uint32_t>(i), d});
          }
        }
        ASSERT_EQ(hits[q].size(), ref.size())
            << BackendName(backend) << " bits=" << bits << " q=" << q;
        for (std::size_t i = 0; i < ref.size(); ++i) {
          EXPECT_TRUE(hits[q][i] == ref[i]) << "q=" << q << " i=" << i;
        }
      }
    }
  }
}

TEST(Kernels, MultiKnnMatchesBatchKnn) {
  for (Backend backend : BackendsUnderTest()) {
    ScopedBackend pin(backend);
    for (std::size_t bits : {64ul, 225ul}) {
      auto codes = RandomCodes(400, bits, /*seed=*/7 * bits, /*clusters=*/4);
      auto store = CodeStore::FromCodes(codes).ValueOrDie();
      auto queries = RandomCodes(6, bits, /*seed=*/31 + bits);
      std::vector<const BinaryCode*> qptrs;
      // Mixed k per query, including 0 and beyond the dataset size.
      std::vector<std::size_t> ks = {0, 1, 10, 64, 400, 500};
      for (const auto& q : queries) qptrs.push_back(&q);
      std::vector<std::vector<std::pair<uint32_t, uint32_t>>> got;
      MultiKnn(store, qptrs.data(), ks.data(), qptrs.size(), &got);
      ASSERT_EQ(got.size(), queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        auto ref = BatchKnn(queries[q], store, ks[q]);
        ASSERT_EQ(got[q].size(), ref.size())
            << BackendName(backend) << " bits=" << bits << " q=" << q;
        for (std::size_t i = 0; i < ref.size(); ++i) {
          EXPECT_EQ(got[q][i], ref[i]) << "q=" << q << " rank " << i;
        }
      }
    }
  }
}

TEST(Kernels, FuzzPortableAndActiveBackendsAgree) {
  // 10k-code pass per length: the two implementations (and the scalar
  // reference, spot-checked) must produce identical distance arrays.
  for (std::size_t bits : {64ul, 225ul, 512ul}) {
    auto codes = RandomCodes(10000, bits, /*seed=*/bits * 31, /*clusters=*/32);
    auto store = CodeStore::FromCodes(codes).ValueOrDie();
    auto query = RandomCodes(1, bits, /*seed=*/bits * 7)[0];
    std::vector<uint32_t> portable;
    {
      ScopedBackend pin(Backend::kPortable);
      BatchDistance(query, store, &portable);
    }
    for (Backend backend : BackendsUnderTest()) {
      ScopedBackend pin(backend);
      std::vector<uint32_t> got;
      BatchDistance(query, store, &got);
      ASSERT_EQ(got, portable) << BackendName(backend) << " bits=" << bits;
    }
    // Spot-check the scalar reference on a sample (full loop is O(n) too
    // but the point here is agreement, not another full differential).
    for (std::size_t i = 0; i < codes.size(); i += 997) {
      EXPECT_EQ(portable[i], codes[i].Distance(query)) << "i=" << i;
    }
  }
}

// Store sizes straddling the 512-code block boundary of the vertical
// layout, including multi-block with a partial tail.
const std::size_t kVerticalSizes[] = {0, 1, 63, 64, 65, 511, 512, 513, 1500};

TEST(VerticalStore, TransposeRoundTripAcrossLengthsAndSizes) {
  for (std::size_t bits : kLengths) {
    for (std::size_t n : kVerticalSizes) {
      auto codes = RandomCodes(n, bits, /*seed=*/7000 + bits + n);
      auto store = CodeStore::FromCodes(codes).ValueOrDie();
      VerticalCodeStore v;
      store.TransposeInto(&v);
      ASSERT_EQ(v.size(), n) << "bits=" << bits;
      if (n > 0) {
        EXPECT_EQ(v.bits(), bits);
      }
      EXPECT_EQ(v.num_blocks(), (n + 511) / 512);
      // Differential round trip: transposing back must reproduce every
      // lane word, zero pads included.
      ASSERT_TRUE(v.IsTransposeOf(store)) << "bits=" << bits << " n=" << n;
      for (std::size_t i = 0; i < n; i += 101) {
        EXPECT_EQ(v.Get(i), codes[i]) << "bits=" << bits << " i=" << i;
      }
      if (n > 0) {
        // A flipped bit anywhere must break the equivalence.
        auto mutated = codes[n / 2];
        mutated.FlipBit(bits / 2);
        CodeStore other = store;
        ASSERT_TRUE(other.Append(mutated).ok());
        EXPECT_FALSE(v.IsTransposeOf(other));
      }
    }
  }
}

TEST(VerticalStore, IncrementalAppendMatchesBulkTranspose) {
  for (std::size_t bits : {64ul, 225ul, 511ul}) {
    auto codes = RandomCodes(700, bits, /*seed=*/31 * bits);
    CodeStore store;
    VerticalCodeStore incremental;
    for (const auto& c : codes) {
      ASSERT_TRUE(store.Append(c).ok());
      ASSERT_TRUE(incremental.Append(c).ok());
    }
    EXPECT_TRUE(incremental.IsTransposeOf(store)) << "bits=" << bits;
    VerticalCodeStore bulk;
    store.TransposeInto(&bulk);
    for (std::size_t i = 0; i < codes.size(); i += 97) {
      EXPECT_EQ(incremental.Get(i), bulk.Get(i)) << "i=" << i;
    }
  }
}

TEST(VerticalStore, RejectsMixedLengths) {
  VerticalCodeStore v;
  ASSERT_TRUE(v.Append(BinaryCode(64)).ok());
  EXPECT_FALSE(v.Append(BinaryCode(65)).ok());
}

TEST(VerticalStore, SwapRemoveTracksCodeStore) {
  auto codes = RandomCodes(600, 225, /*seed=*/53);
  auto store = CodeStore::FromCodes(codes).ValueOrDie();
  VerticalCodeStore v;
  store.TransposeInto(&v);
  std::size_t step = 0;
  while (store.size() > 0) {
    const std::size_t i = (store.size() * 2) / 3;
    store.SwapRemove(i);
    v.SwapRemove(i);
    // Full differential every few removals and around the 512-code
    // block boundary, where the tail block empties.
    if (++step % 37 == 0 || store.size() == 512 || store.size() == 511 ||
        store.size() <= 2) {
      ASSERT_TRUE(v.IsTransposeOf(store)) << "size=" << store.size();
    }
  }
  EXPECT_TRUE(v.empty());
}

TEST(Kernels, VerticalWithinDistanceMatchesScalarEverywhere) {
  for (Backend backend : BackendsUnderTest()) {
    ScopedBackend pin(backend);
    for (std::size_t bits : kLengths) {
      for (std::size_t n : {0ul, 1ul, 511ul, 512ul, 513ul, 1500ul}) {
        auto codes = RandomCodes(n, bits, /*seed=*/bits * 131 + n,
                                 /*clusters=*/6);
        auto store = CodeStore::FromCodes(codes).ValueOrDie();
        VerticalCodeStore v;
        store.TransposeInto(&v);
        auto query = RandomCodes(1, bits, /*seed=*/bits + 3 * n)[0];
        for (std::size_t h :
             {0ul, 1ul, 3ul, bits / 8, bits / 4, bits - 1, bits}) {
          std::vector<uint32_t> expected;
          for (std::size_t i = 0; i < n; ++i) {
            if (codes[i].WithinDistance(query, h)) {
              expected.push_back(static_cast<uint32_t>(i));
            }
          }
          std::vector<uint32_t> slots;
          VerticalScanStats stats;
          BatchWithinDistance(query, v, h, &slots, &stats);
          ASSERT_EQ(slots, expected) << BackendName(backend) << " bits="
                                     << bits << " n=" << n << " h=" << h;
          EXPECT_EQ(BatchCount(query, v, h), expected.size());
          EXPECT_EQ(stats.blocks_scanned, v.num_blocks());
          EXPECT_LE(stats.blocks_pruned, stats.blocks_scanned);
          EXPECT_LE(stats.planes_scanned, stats.blocks_scanned * bits);
        }
      }
    }
  }
}

TEST(Kernels, VerticalBackendsAgreeOnClusteredData) {
  // Clustered codes concentrate matches in a few blocks, exercising the
  // prune/no-prune split; every backend must agree with portable.
  const std::size_t bits = 256;
  auto codes = RandomCodes(3000, bits, /*seed=*/77, /*clusters=*/3);
  auto store = CodeStore::FromCodes(codes).ValueOrDie();
  VerticalCodeStore v;
  store.TransposeInto(&v);
  auto query = codes[123];
  query.FlipBit(5);
  for (std::size_t h : {2ul, 16ul, 64ul}) {
    std::vector<uint32_t> portable;
    {
      ScopedBackend pin(Backend::kPortable);
      BatchWithinDistance(query, v, h, &portable);
    }
    for (Backend backend : BackendsUnderTest()) {
      ScopedBackend pin(backend);
      std::vector<uint32_t> got;
      BatchWithinDistance(query, v, h, &got);
      EXPECT_EQ(got, portable) << BackendName(backend) << " h=" << h;
    }
  }
}

TEST(Kernels, ChooseLayoutHeuristic) {
  // Vertical only pays off for big stores with selective radii.
  EXPECT_EQ(ChooseLayout(128, 8, 1 << 20), KernelLayout::kVertical);
  EXPECT_EQ(ChooseLayout(128, 8, kVerticalMinCodes), KernelLayout::kVertical);
  EXPECT_EQ(ChooseLayout(128, 8, kVerticalMinCodes - 1),
            KernelLayout::kHorizontal);
  EXPECT_EQ(ChooseLayout(128, 17, 1 << 20), KernelLayout::kHorizontal);
  EXPECT_EQ(ChooseLayout(64, 8, 1 << 20), KernelLayout::kVertical);
  EXPECT_EQ(ChooseLayout(64, 9, 1 << 20), KernelLayout::kHorizontal);
}

TEST(Kernels, DualDispatchHonorsPolicyAndMirror) {
  const std::size_t bits = 128;
  const std::size_t n = kVerticalMinCodes + 77;
  auto codes = RandomCodes(n, bits, /*seed=*/9, /*clusters=*/5);
  auto store = CodeStore::FromCodes(codes).ValueOrDie();
  VerticalCodeStore mirror;
  store.TransposeInto(&mirror);
  auto query = RandomCodes(1, bits, /*seed=*/10)[0];
  const std::size_t h = 8;
  std::vector<uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (codes[i].WithinDistance(query, h)) {
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  {
    ScopedLayout pin(LayoutPolicy::kAuto);
    std::vector<uint32_t> slots;
    VerticalScanStats stats;
    EXPECT_EQ(BatchWithinDistanceDual(query, store, &mirror, h, &slots,
                                      &stats),
              KernelLayout::kVertical);
    EXPECT_EQ(slots, expected);
    EXPECT_EQ(stats.blocks_scanned, mirror.num_blocks());
    // Unselective radius flips the heuristic back to horizontal.
    std::vector<uint32_t> all;
    EXPECT_EQ(BatchWithinDistanceDual(query, store, &mirror, bits, &all),
              KernelLayout::kHorizontal);
    EXPECT_EQ(all.size(), n);
  }
  {
    ScopedLayout pin(LayoutPolicy::kForceHorizontal);
    std::vector<uint32_t> slots;
    EXPECT_EQ(BatchWithinDistanceDual(query, store, &mirror, h, &slots),
              KernelLayout::kHorizontal);
    EXPECT_EQ(slots, expected);
  }
  {
    ScopedLayout pin(LayoutPolicy::kForceVertical);
    std::vector<uint32_t> slots;
    EXPECT_EQ(BatchWithinDistanceDual(query, store, &mirror, h, &slots),
              KernelLayout::kVertical);
    EXPECT_EQ(slots, expected);
    // No mirror, or a mirror that lags the store, must fall back.
    std::vector<uint32_t> fallback;
    EXPECT_EQ(BatchWithinDistanceDual(query, store, nullptr, h, &fallback),
              KernelLayout::kHorizontal);
    EXPECT_EQ(fallback, expected);
    CodeStore grown = store;
    ASSERT_TRUE(grown.Append(query).ok());
    std::vector<uint32_t> stale;
    EXPECT_EQ(BatchWithinDistanceDual(query, grown, &mirror, h, &stale),
              KernelLayout::kHorizontal);
    EXPECT_EQ(stale.size(), expected.size() + 1);
  }
}

TEST(Kernels, VerticalScanSharedAcrossThreads) {
  // Read-only concurrent scans over one shared mirror: exercised under
  // TSan by scripts/check.sh. Each thread gets its own output vector.
  const std::size_t bits = 128;
  auto codes = RandomCodes(2000, bits, /*seed=*/21, /*clusters=*/4);
  auto store = CodeStore::FromCodes(codes).ValueOrDie();
  VerticalCodeStore v;
  store.TransposeInto(&v);
  std::vector<uint32_t> expected;
  auto query = RandomCodes(1, bits, /*seed=*/22)[0];
  BatchWithinDistance(query, store, 24, &expected);
  ThreadPool pool(4);
  std::vector<std::vector<uint32_t>> got(16);
  ParallelFor(&pool, got.size(), [&](std::size_t i) {
    BatchWithinDistance(query, v, 24, &got[i]);
  });
  for (const auto& g : got) EXPECT_EQ(g, expected);
}

TEST(LocalCounters, MergeLocalMatchesPerRecordAdds) {
  // The batched counter path must produce totals byte-identical to the
  // contended per-record pattern it replaced.
  mr::Counters direct;
  mr::Counters batched;
  mr::LocalCounters local_a;
  mr::LocalCounters local_b;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t delta = rng.UniformInt(0, 100);
    direct.Add(mr::kMapInputRecords, delta);
    (i % 2 ? local_a : local_b).Add(mr::CounterId::kMapInputRecords, delta);
    if (i % 3 == 0) {
      direct.Add("CUSTOM", 1);
      (i % 2 ? local_a : local_b).Add("CUSTOM", 1);
    }
  }
  direct.Add(mr::kShuffleBytes, 0);  // touched with zero total
  local_a.Add(mr::CounterId::kShuffleBytes, 0);
  batched.MergeLocal(local_a);
  batched.MergeLocal(local_b);
  EXPECT_EQ(batched.Snapshot(), direct.Snapshot());
  EXPECT_EQ(batched.Get(mr::kMapInputRecords),
            direct.Get(mr::kMapInputRecords));
  EXPECT_EQ(batched.Get("CUSTOM"), direct.Get("CUSTOM"));
}

TEST(LocalCounters, InternsWellKnownNames) {
  mr::LocalCounters local;
  local.Add(mr::kReduceInputGroups, 3);  // by name
  local.Add(mr::CounterId::kReduceInputGroups, 4);  // by id
  EXPECT_EQ(local.Get(mr::CounterId::kReduceInputGroups), 7);
  mr::Counters counters;
  counters.MergeLocal(local);
  EXPECT_EQ(counters.Get(mr::kReduceInputGroups), 7);
  auto snap = counters.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.begin()->first, mr::kReduceInputGroups);
}

}  // namespace
}  // namespace hamming::kernels

// The attempt layer's contract: with injected failures and stragglers,
// every job and every MapReduce join plan produces outputs and counters
// byte-identical to a failure-free run; speculation commits the backup
// attempt of a straggling task; an exhausted attempt budget surfaces the
// task's original error.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include "common/sync.h"

#include "observability/stopwatch.h"

#include "dataset/generators.h"
#include "mapreduce/job.h"
#include "mrjoin/mrha.h"
#include "mrjoin/mrha_knn.h"
#include "mrjoin/mrselect.h"
#include "mrjoin/pgbj.h"
#include "mrjoin/pmh.h"

namespace hamming::mr {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// A word-count job over a few splits: the workhorse spec the attempt
// tests perturb with injectors.
JobSpec WordCountSpec() {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_splits = {
      {{{}, Bytes("ha")}, {{}, Bytes("index")}, {{}, Bytes("ha")}},
      {{{}, Bytes("gray")}, {{}, Bytes("ha")}, {{}, Bytes("pivot")}},
      {{{}, Bytes("index")}, {{}, Bytes("gray")}},
      {{{}, Bytes("pivot")}, {{}, Bytes("ha")}, {{}, Bytes("index")}},
  };
  spec.map_fn = [](const Record& rec, Emitter* out) -> Status {
    out->Emit(rec.value, Bytes("1"));
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>& values,
                      Emitter* out) -> Status {
    out->Emit(key, Bytes(std::to_string(values.size())));
    return Status::OK();
  };
  spec.options.num_reducers = 3;
  return spec;
}

testing::AssertionResult OutputsEqual(
    const std::vector<std::vector<Record>>& a,
    const std::vector<std::vector<Record>>& b) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure()
           << "partition counts differ: " << a.size() << " vs " << b.size();
  }
  for (std::size_t p = 0; p < a.size(); ++p) {
    if (a[p].size() != b[p].size()) {
      return testing::AssertionFailure() << "partition " << p << " sizes: "
                                         << a[p].size() << " vs "
                                         << b[p].size();
    }
    for (std::size_t i = 0; i < a[p].size(); ++i) {
      if (a[p][i].key != b[p][i].key || a[p][i].value != b[p][i].value) {
        return testing::AssertionFailure()
               << "partition " << p << " record " << i << " differs";
      }
    }
  }
  return testing::AssertionSuccess();
}

// Aggressive-but-recoverable fault regime: every attempt fails with
// probability 0.2 and straggles with probability 0.1, under a generous
// retry budget and speculation. (0.2^8 per task ~ 3e-6 residual risk.)
ExecutionOptions FaultyExec(uint64_t seed) {
  ExecutionOptions exec;
  exec.max_attempts = 8;
  exec.speculation.enabled = true;
  exec.speculation.slow_attempt_seconds = 0.05;
  RandomFaultOptions f;
  f.failure_probability = 0.2;
  f.straggler_probability = 0.1;
  f.straggler_delay_seconds = 0.1;
  f.seed = seed;
  exec.fault = std::make_shared<RandomFaultInjector>(f);
  return exec;
}

TEST(FaultToleranceTest, InjectedFailuresLeaveOutputByteIdentical) {
  Cluster clean_cluster({4, 2, 4});
  JobSpec clean = WordCountSpec();
  auto clean_result = RunJob(clean, &clean_cluster);
  ASSERT_TRUE(clean_result.ok()) << clean_result.status();

  // Several fault seeds: identity must hold whatever the schedule, and
  // across the sweep at least one attempt must actually have failed
  // (seeds are fixed, so this is deterministic).
  int64_t total_failures = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    Cluster faulty_cluster({4, 2, 4});
    JobSpec faulty = WordCountSpec();
    faulty.options = FaultyExec(seed);
    faulty.options.num_reducers = clean.options.num_reducers;
    auto faulty_result = RunJob(faulty, &faulty_cluster);
    ASSERT_TRUE(faulty_result.ok()) << faulty_result.status();

    EXPECT_TRUE(OutputsEqual(clean_result->outputs, faulty_result->outputs))
        << "seed " << seed;
    EXPECT_EQ(clean_result->counters.Snapshot(),
              faulty_result->counters.Snapshot())
        << "seed " << seed;
    EXPECT_EQ(clean_cluster.cumulative_counters()->Snapshot(),
              faulty_cluster.cumulative_counters()->Snapshot())
        << "seed " << seed;
    total_failures += faulty_result->trace.Count(JobEventType::kAttemptFail);
  }
  EXPECT_GT(total_failures, 0);
}

TEST(FaultToleranceTest, RetriesRecoverFromTargetedFailures) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = WordCountSpec();
  spec.options.max_attempts = 3;
  spec.options.fault = std::make_shared<TargetedFaultInjector>(
      std::vector<TargetedFault>{
          {TaskKind::kMap, 1, /*fail_first_attempts=*/2, 0.0},
          {TaskKind::kReduce, 0, /*fail_first_attempts=*/1, 0.0},
      });
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();

  Cluster clean_cluster({4, 2, 4});
  auto clean = RunJob(WordCountSpec(), &clean_cluster);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(OutputsEqual(clean->outputs, result->outputs));
  EXPECT_EQ(clean->counters.Snapshot(), result->counters.Snapshot());

  AttemptStats stats = result->trace.Stats();
  EXPECT_EQ(stats.failed, 3);  // two map failures + one reduce failure
  // Every task eventually committed exactly once.
  EXPECT_EQ(stats.finished, 4 + 3);  // 4 map tasks, 3 reduce tasks
}

TEST(FaultToleranceTest, FailureOnEmptySplitIsRetriedToo) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = WordCountSpec();
  spec.input_splits.push_back({});  // task 4: empty split
  spec.options.max_attempts = 2;
  spec.options.fault = std::make_shared<TargetedFaultInjector>(
      std::vector<TargetedFault>{{TaskKind::kMap, 4, 1, 0.0}});
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->trace.Stats().failed, 1);
}

TEST(FaultToleranceTest, ExhaustedBudgetSurfacesOriginalTaskError) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = WordCountSpec();
  spec.options.max_attempts = 3;
  spec.options.fault = std::make_shared<TargetedFaultInjector>(
      std::vector<TargetedFault>{{TaskKind::kMap, 2, /*fail_first=*/3, 0.0}});
  auto result = RunJob(spec, &cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
  // The surfaced error is the task's *first* failure.
  EXPECT_NE(result.status().message().find("map task 2 attempt 0"),
            std::string::npos)
      << result.status();
}

TEST(FaultToleranceTest, UserErrorsAreRetriedAndThenSurfaced) {
  struct FailCounter : JobObserver {
    std::atomic<int> fails{0};
    void OnEvent(const JobEvent& event) override {
      if (event.type == JobEventType::kAttemptFail) ++fails;
    }
  } observer;
  Cluster cluster({4, 2, 4});
  JobSpec spec = WordCountSpec();
  spec.options.max_attempts = 2;
  spec.options.observer = &observer;
  spec.map_fn = [](const Record& rec, Emitter*) -> Status {
    if (rec.value == Bytes("pivot")) {
      return Status::ExecutionError("user map exploded");
    }
    return Status::OK();
  };
  auto result = RunJob(spec, &cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("user map exploded"),
            std::string::npos);
  // A deterministic user error burns the whole budget before surfacing:
  // the first "pivot" split to exhaust fails both of its attempts.
  EXPECT_GE(observer.fails.load(), 2);
}

TEST(FaultToleranceTest, SpeculationCommitsTheBackupAttempt) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = WordCountSpec();
  spec.options.speculation.enabled = true;
  spec.options.speculation.slow_attempt_seconds = 0.02;
  // Attempt 0 of map task 0 straggles far past the threshold; the backup
  // (attempt 1) runs clean, commits, and the primary is cancelled out of
  // its delay.
  spec.options.fault = std::make_shared<TargetedFaultInjector>(
      std::vector<TargetedFault>{{TaskKind::kMap, 0, 0, /*delay=*/5.0}});
  obs::Stopwatch watch;
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  // Cancellation must cut the 5s injected delay short.
  EXPECT_LT(watch.ElapsedSeconds(), 4.0);

  const auto& events = result->trace.events();
  EXPECT_GE(result->trace.Count(JobEventType::kAttemptSpeculate), 1);
  EXPECT_GE(result->trace.Count(JobEventType::kAttemptKill), 1);
  auto finish = std::find_if(events.begin(), events.end(), [](const JobEvent& e) {
    return e.type == JobEventType::kAttemptFinish &&
           e.kind == TaskKind::kMap && e.task == 0;
  });
  ASSERT_NE(finish, events.end());
  EXPECT_EQ(finish->attempt, 1);

  Cluster clean_cluster({4, 2, 4});
  auto clean = RunJob(WordCountSpec(), &clean_cluster);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(OutputsEqual(clean->outputs, result->outputs));
  EXPECT_EQ(clean->counters.Snapshot(), result->counters.Snapshot());
}

TEST(FaultToleranceTest, ObserverSeesEveryTraceEvent) {
  struct CountingObserver : JobObserver {
    std::vector<JobEventType> seen;
    void OnEvent(const JobEvent& event) override {
      seen.push_back(event.type);
    }
  } observer;
  Cluster cluster({4, 2, 4});
  JobSpec spec = WordCountSpec();
  spec.options.observer = &observer;
  spec.options.max_attempts = 2;
  spec.options.fault = std::make_shared<TargetedFaultInjector>(
      std::vector<TargetedFault>{{TaskKind::kMap, 0, 1, 0.0}});
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(observer.seen.size(), result->trace.events().size());
}

TEST(FaultToleranceTest, TraceExportsJson) {
  Cluster cluster({4, 2, 4});
  auto result = RunJob(WordCountSpec(), &cluster);
  ASSERT_TRUE(result.ok());
  const std::string json = result->trace.ToJson();
  EXPECT_NE(json.find("\"attempt_finish\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_start\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"map\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(FaultToleranceTest, RandomInjectorIsDeterministic) {
  RandomFaultOptions opts;
  opts.failure_probability = 0.3;
  opts.straggler_probability = 0.3;
  opts.straggler_delay_seconds = 1.0;
  opts.seed = 99;
  RandomFaultInjector a(opts), b(opts);
  int fails = 0, delays = 0;
  for (std::size_t task = 0; task < 64; ++task) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      FaultDecision da = a.OnAttempt(TaskKind::kMap, task, attempt);
      FaultDecision db = b.OnAttempt(TaskKind::kMap, task, attempt);
      EXPECT_EQ(da.fail, db.fail);
      EXPECT_EQ(da.delay_seconds, db.delay_seconds);
      fails += da.fail;
      delays += da.delay_seconds > 0.0;
    }
  }
  // ~30% of 256 decisions on each stream.
  EXPECT_GT(fails, 40);
  EXPECT_LT(fails, 140);
  EXPECT_GT(delays, 40);
  EXPECT_LT(delays, 140);
}

TEST(FaultToleranceTest, CustomPartitionerRoutesThroughOptions) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = WordCountSpec();
  spec.options.partition_fn = [](const std::vector<uint8_t>&, std::size_t) {
    return std::size_t{0};  // everything to reducer 0
  };
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->outputs.size(), 3u);
  EXPECT_FALSE(result->outputs[0].empty());
  EXPECT_TRUE(result->outputs[1].empty());
  EXPECT_TRUE(result->outputs[2].empty());
}

TEST(FaultToleranceTest, FaultyRunsMatchAtEveryShuffleBudget) {
  // The identity contract holds per budget even when map attempts fail
  // *after* spilling: losing attempts' spill files are discarded with
  // their AttemptOutput and the retry re-creates them deterministically.
  for (std::size_t budget :
       {std::size_t{256}, std::size_t{64 * 1024}, kUnlimitedShuffleMemory}) {
    Cluster clean_cluster({4, 2, 4});
    JobSpec clean = WordCountSpec();
    clean.options.shuffle_memory_bytes = budget;
    auto clean_result = RunJob(clean, &clean_cluster);
    ASSERT_TRUE(clean_result.ok()) << clean_result.status();

    Cluster faulty_cluster({4, 2, 4});
    JobSpec faulty = WordCountSpec();
    faulty.options = FaultyExec(/*seed=*/7);
    faulty.options.num_reducers = clean.options.num_reducers;
    faulty.options.shuffle_memory_bytes = budget;
    auto faulty_result = RunJob(faulty, &faulty_cluster);
    ASSERT_TRUE(faulty_result.ok()) << faulty_result.status();

    EXPECT_TRUE(OutputsEqual(clean_result->outputs, faulty_result->outputs))
        << "budget " << budget;
    EXPECT_EQ(clean_result->counters.Snapshot(),
              faulty_result->counters.Snapshot())
        << "budget " << budget;
  }
}

TEST(CancelTokenTest, CancelInterruptsSleep) {
  CancelToken token;
  obs::Stopwatch watch;
  Thread canceller([&token] {
    SleepFor(std::chrono::milliseconds(20));
    token.Cancel();
  });
  EXPECT_FALSE(token.SleepFor(10.0));
  canceller.join();
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
  EXPECT_TRUE(token.cancelled());
  // Sleeping on an already-cancelled token returns immediately.
  EXPECT_FALSE(token.SleepFor(10.0));
}

}  // namespace
}  // namespace hamming::mr

namespace hamming::mrjoin {
namespace {

// Every MapReduce join/select plan must be fault-transparent: with
// injected failure probability 0.2 and stragglers, results and
// data-movement counters match the failure-free run exactly.
class PlanFaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_data_ = GenerateDataset(DatasetKind::kNusWide, 200,
                              {.num_clusters = 8, .seed = 3});
    s_data_ = GenerateDataset(DatasetKind::kNusWide, 250,
                              {.num_clusters = 8, .seed = 3});
  }

  // Same regime as mr::FaultyExec above: p=0.2 failures, stragglers,
  // retries and speculation on.
  static mr::ExecutionOptions Faulty(uint64_t seed) {
    mr::ExecutionOptions exec;
    exec.max_attempts = 8;
    exec.speculation.enabled = true;
    exec.speculation.slow_attempt_seconds = 0.05;
    mr::RandomFaultOptions f;
    f.failure_probability = 0.2;
    f.straggler_probability = 0.1;
    f.straggler_delay_seconds = 0.1;
    f.seed = seed;
    exec.fault = std::make_shared<mr::RandomFaultInjector>(f);
    return exec;
  }

  FloatMatrix r_data_;
  FloatMatrix s_data_;
};

void ExpectRowsEqual(const std::vector<KnnJoinRow>& a,
                     const std::vector<KnnJoinRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].r, b[i].r) << "row " << i;
    EXPECT_EQ(a[i].neighbors, b[i].neighbors) << "row " << i;
  }
}

TEST_F(PlanFaultToleranceTest, MrhaMatchesFailureFreeRun) {
  for (MrhaOption option : {MrhaOption::kA, MrhaOption::kB}) {
    MrhaOptions opts;
    opts.num_partitions = 4;
    opts.option = option;
    auto fault_opts = opts;
    fault_opts.exec = Faulty(/*seed=*/11);
    mr::Cluster clean_cluster({4, 2, 4});
    mr::Cluster faulty_cluster({4, 2, 4});
    auto clean = RunMrhaJoin(r_data_, s_data_, opts, &clean_cluster);
    auto faulty = RunMrhaJoin(r_data_, s_data_, fault_opts, &faulty_cluster);
    ASSERT_TRUE(clean.ok()) << clean.status();
    ASSERT_TRUE(faulty.ok()) << faulty.status();
    auto clean_pairs = clean->pairs;
    auto faulty_pairs = faulty->pairs;
    NormalizePairs(&clean_pairs);
    NormalizePairs(&faulty_pairs);
    EXPECT_EQ(clean_pairs, faulty_pairs);
    EXPECT_EQ(clean->shuffle_bytes, faulty->shuffle_bytes);
    EXPECT_EQ(clean->broadcast_bytes, faulty->broadcast_bytes);
    EXPECT_EQ(clean_cluster.cumulative_counters()->Snapshot(),
              faulty_cluster.cumulative_counters()->Snapshot());
  }
}

TEST_F(PlanFaultToleranceTest, PmhMatchesFailureFreeRun) {
  PmhOptions opts;
  opts.num_partitions = 4;
  auto fault_opts = opts;
  fault_opts.exec = Faulty(/*seed=*/12);
  mr::Cluster clean_cluster({4, 2, 4});
  mr::Cluster faulty_cluster({4, 2, 4});
  auto clean = RunPmhJoin(r_data_, s_data_, opts, &clean_cluster);
  auto faulty = RunPmhJoin(r_data_, s_data_, fault_opts, &faulty_cluster);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(faulty.ok()) << faulty.status();
  auto clean_pairs = clean->pairs;
  auto faulty_pairs = faulty->pairs;
  NormalizePairs(&clean_pairs);
  NormalizePairs(&faulty_pairs);
  EXPECT_EQ(clean_pairs, faulty_pairs);
  EXPECT_EQ(clean->shuffle_bytes, faulty->shuffle_bytes);
  EXPECT_EQ(clean->broadcast_bytes, faulty->broadcast_bytes);
}

TEST_F(PlanFaultToleranceTest, PgbjMatchesFailureFreeRun) {
  PgbjOptions opts;
  opts.num_partitions = 4;
  opts.k = 5;
  auto fault_opts = opts;
  fault_opts.exec = Faulty(/*seed=*/13);
  mr::Cluster clean_cluster({4, 2, 4});
  mr::Cluster faulty_cluster({4, 2, 4});
  auto clean = RunPgbjJoin(r_data_, s_data_, opts, &clean_cluster);
  auto faulty = RunPgbjJoin(r_data_, s_data_, fault_opts, &faulty_cluster);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(faulty.ok()) << faulty.status();
  ExpectRowsEqual(clean->rows, faulty->rows);
  EXPECT_EQ(clean->shuffle_bytes, faulty->shuffle_bytes);
}

TEST_F(PlanFaultToleranceTest, MrSelectMatchesFailureFreeRun) {
  MrSelectOptions opts;
  opts.num_partitions = 4;
  auto fault_opts = opts;
  fault_opts.exec = Faulty(/*seed=*/14);
  FloatMatrix queries = GenerateDataset(DatasetKind::kNusWide, 8,
                                        {.num_clusters = 8, .seed = 5});
  mr::Cluster clean_cluster({4, 2, 4});
  mr::Cluster faulty_cluster({4, 2, 4});
  auto clean = RunMrSelect(r_data_, queries, opts, &clean_cluster);
  auto faulty = RunMrSelect(r_data_, queries, fault_opts, &faulty_cluster);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(faulty.ok()) << faulty.status();
  EXPECT_EQ(clean->matches, faulty->matches);
  EXPECT_EQ(clean->shuffle_bytes, faulty->shuffle_bytes);
  EXPECT_EQ(clean->broadcast_bytes, faulty->broadcast_bytes);
}

// Every plan must produce byte-identical results and logical counters
// whatever the shuffle memory budget — unlimited (in-memory), 1 MiB, or
// 64 KiB (heavy spilling) — and, at the small budget, also under injected
// faults with speculation on.
TEST_F(PlanFaultToleranceTest, PlansByteIdenticalAcrossShuffleBudgets) {
  const std::size_t kSmall = std::size_t{64} << 10;
  const std::vector<std::size_t> kCleanBudgets = {std::size_t{1} << 20,
                                                  kSmall};

  for (MrhaOption option : {MrhaOption::kA, MrhaOption::kB}) {
    MrhaOptions opts;
    opts.num_partitions = 4;
    opts.option = option;
    mr::Cluster base_cluster({4, 2, 4});
    auto base = RunMrhaJoin(r_data_, s_data_, opts, &base_cluster);
    ASSERT_TRUE(base.ok()) << base.status();
    auto base_pairs = base->pairs;
    NormalizePairs(&base_pairs);
    auto check = [&](const MrhaOptions& variant, const std::string& what) {
      mr::Cluster cluster({4, 2, 4});
      auto got = RunMrhaJoin(r_data_, s_data_, variant, &cluster);
      ASSERT_TRUE(got.ok()) << what << ": " << got.status();
      auto pairs = got->pairs;
      NormalizePairs(&pairs);
      EXPECT_EQ(base_pairs, pairs) << what;
      EXPECT_EQ(base->shuffle_bytes, got->shuffle_bytes) << what;
      EXPECT_EQ(base->broadcast_bytes, got->broadcast_bytes) << what;
    };
    for (std::size_t budget : kCleanBudgets) {
      auto v = opts;
      v.exec.shuffle_memory_bytes = budget;
      check(v, "mrha clean budget " + std::to_string(budget));
    }
    auto fv = opts;
    fv.exec = Faulty(/*seed=*/21);
    fv.exec.shuffle_memory_bytes = kSmall;
    check(fv, "mrha faulty 64KiB");
  }

  {
    PmhOptions opts;
    opts.num_partitions = 4;
    mr::Cluster base_cluster({4, 2, 4});
    auto base = RunPmhJoin(r_data_, s_data_, opts, &base_cluster);
    ASSERT_TRUE(base.ok()) << base.status();
    auto base_pairs = base->pairs;
    NormalizePairs(&base_pairs);
    auto check = [&](const PmhOptions& variant, const std::string& what) {
      mr::Cluster cluster({4, 2, 4});
      auto got = RunPmhJoin(r_data_, s_data_, variant, &cluster);
      ASSERT_TRUE(got.ok()) << what << ": " << got.status();
      auto pairs = got->pairs;
      NormalizePairs(&pairs);
      EXPECT_EQ(base_pairs, pairs) << what;
      EXPECT_EQ(base->shuffle_bytes, got->shuffle_bytes) << what;
    };
    for (std::size_t budget : kCleanBudgets) {
      auto v = opts;
      v.exec.shuffle_memory_bytes = budget;
      check(v, "pmh clean budget " + std::to_string(budget));
    }
    auto fv = opts;
    fv.exec = Faulty(/*seed=*/22);
    fv.exec.shuffle_memory_bytes = kSmall;
    check(fv, "pmh faulty 64KiB");
  }

  {
    PgbjOptions opts;
    opts.num_partitions = 4;
    opts.k = 5;
    mr::Cluster base_cluster({4, 2, 4});
    auto base = RunPgbjJoin(r_data_, s_data_, opts, &base_cluster);
    ASSERT_TRUE(base.ok()) << base.status();
    auto check = [&](const PgbjOptions& variant, const std::string& what) {
      mr::Cluster cluster({4, 2, 4});
      auto got = RunPgbjJoin(r_data_, s_data_, variant, &cluster);
      ASSERT_TRUE(got.ok()) << what << ": " << got.status();
      ExpectRowsEqual(base->rows, got->rows);
      EXPECT_EQ(base->shuffle_bytes, got->shuffle_bytes) << what;
    };
    for (std::size_t budget : kCleanBudgets) {
      auto v = opts;
      v.exec.shuffle_memory_bytes = budget;
      check(v, "pgbj clean budget " + std::to_string(budget));
    }
    auto fv = opts;
    fv.exec = Faulty(/*seed=*/23);
    fv.exec.shuffle_memory_bytes = kSmall;
    check(fv, "pgbj faulty 64KiB");
  }

  {
    MrSelectOptions opts;
    opts.num_partitions = 4;
    FloatMatrix queries = GenerateDataset(DatasetKind::kNusWide, 8,
                                          {.num_clusters = 8, .seed = 5});
    mr::Cluster base_cluster({4, 2, 4});
    auto base = RunMrSelect(r_data_, queries, opts, &base_cluster);
    ASSERT_TRUE(base.ok()) << base.status();
    auto check = [&](const MrSelectOptions& variant, const std::string& what) {
      mr::Cluster cluster({4, 2, 4});
      auto got = RunMrSelect(r_data_, queries, variant, &cluster);
      ASSERT_TRUE(got.ok()) << what << ": " << got.status();
      EXPECT_EQ(base->matches, got->matches) << what;
      EXPECT_EQ(base->shuffle_bytes, got->shuffle_bytes) << what;
      EXPECT_EQ(base->broadcast_bytes, got->broadcast_bytes) << what;
    };
    for (std::size_t budget : kCleanBudgets) {
      auto v = opts;
      v.exec.shuffle_memory_bytes = budget;
      check(v, "mrselect clean budget " + std::to_string(budget));
    }
    auto fv = opts;
    fv.exec = Faulty(/*seed=*/24);
    fv.exec.shuffle_memory_bytes = kSmall;
    check(fv, "mrselect faulty 64KiB");
  }

  {
    MrhaKnnOptions opts;
    opts.num_partitions = 4;
    opts.k = 5;
    mr::Cluster base_cluster({4, 2, 4});
    auto base = RunMrhaKnnJoin(r_data_, s_data_, opts, &base_cluster);
    ASSERT_TRUE(base.ok()) << base.status();
    auto check = [&](const MrhaKnnOptions& variant, const std::string& what) {
      mr::Cluster cluster({4, 2, 4});
      auto got = RunMrhaKnnJoin(r_data_, s_data_, variant, &cluster);
      ASSERT_TRUE(got.ok()) << what << ": " << got.status();
      ExpectRowsEqual(base->rows, got->rows);
      EXPECT_EQ(base->shuffle_bytes, got->shuffle_bytes) << what;
      EXPECT_EQ(base->broadcast_bytes, got->broadcast_bytes) << what;
    };
    for (std::size_t budget : kCleanBudgets) {
      auto v = opts;
      v.exec.shuffle_memory_bytes = budget;
      check(v, "mrhaknn clean budget " + std::to_string(budget));
    }
    auto fv = opts;
    fv.exec = Faulty(/*seed=*/25);
    fv.exec.shuffle_memory_bytes = kSmall;
    check(fv, "mrhaknn faulty 64KiB");
  }
}

TEST_F(PlanFaultToleranceTest, MrhaKnnMatchesFailureFreeRun) {
  MrhaKnnOptions opts;
  opts.num_partitions = 4;
  opts.k = 5;
  auto fault_opts = opts;
  fault_opts.exec = Faulty(/*seed=*/15);
  mr::Cluster clean_cluster({4, 2, 4});
  mr::Cluster faulty_cluster({4, 2, 4});
  auto clean = RunMrhaKnnJoin(r_data_, s_data_, opts, &clean_cluster);
  auto faulty = RunMrhaKnnJoin(r_data_, s_data_, fault_opts, &faulty_cluster);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(faulty.ok()) << faulty.status();
  ExpectRowsEqual(clean->rows, faulty->rows);
  EXPECT_EQ(clean->shuffle_bytes, faulty->shuffle_bytes);
  EXPECT_EQ(clean->broadcast_bytes, faulty->broadcast_bytes);
}

}  // namespace
}  // namespace hamming::mrjoin

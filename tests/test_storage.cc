// Persistence tests: container format, corruption detection, index and
// table round-trips.
#include "storage/persist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "test_util.h"

namespace hamming::storage {
namespace {

std::string TempPath(const std::string& name) {
  return std::string("/tmp/hammingdb_test_") + name;
}

class StorageTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::string Path(const std::string& name) {
    std::string p = TempPath(name);
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(StorageTest, Crc32KnownVectors) {
  // The classic check value: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST_F(StorageTest, ContainerRoundTrip) {
  auto path = Path("container");
  std::vector<uint8_t> payload{1, 2, 3, 250, 0, 7};
  ASSERT_TRUE(WriteContainer(path, PayloadKind::kGeneric, payload).ok());
  auto back = ReadContainer(path, PayloadKind::kGeneric);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, payload);
}

TEST_F(StorageTest, EmptyPayloadSupported) {
  auto path = Path("empty");
  ASSERT_TRUE(WriteContainer(path, PayloadKind::kGeneric, {}).ok());
  auto back = ReadContainer(path, PayloadKind::kGeneric);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST_F(StorageTest, MissingFileFails) {
  EXPECT_TRUE(ReadContainer("/tmp/hammingdb_definitely_missing",
                            PayloadKind::kGeneric)
                  .status()
                  .IsIOError());
}

TEST_F(StorageTest, KindMismatchFails) {
  auto path = Path("kind");
  ASSERT_TRUE(WriteContainer(path, PayloadKind::kGeneric, {1}).ok());
  EXPECT_TRUE(ReadContainer(path, PayloadKind::kDynamicHAIndex)
                  .status()
                  .IsIOError());
}

TEST_F(StorageTest, CorruptionDetected) {
  auto path = Path("corrupt");
  std::vector<uint8_t> payload(100, 42);
  ASSERT_TRUE(WriteContainer(path, PayloadKind::kGeneric, payload).ok());
  // Flip one payload byte in the middle of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char b = 0x13;
    f.write(&b, 1);
  }
  EXPECT_TRUE(
      ReadContainer(path, PayloadKind::kGeneric).status().IsIOError());
}

TEST_F(StorageTest, TruncationDetected) {
  auto path = Path("trunc");
  std::vector<uint8_t> payload(100, 7);
  ASSERT_TRUE(WriteContainer(path, PayloadKind::kGeneric, payload).ok());
  // Rewrite the file shorter.
  std::vector<uint8_t> bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  bytes.resize(bytes.size() - 10);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<long>(bytes.size()));
  }
  EXPECT_TRUE(
      ReadContainer(path, PayloadKind::kGeneric).status().IsIOError());
}

TEST_F(StorageTest, GarbageFileFails) {
  auto path = Path("garbage");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a container file at all, but long enough to parse";
  }
  EXPECT_TRUE(
      ReadContainer(path, PayloadKind::kGeneric).status().IsIOError());
}

TEST_F(StorageTest, IndexRoundTrip) {
  auto codes = testutil::RandomCodes(400, 32, /*seed=*/3, /*clusters=*/8);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  auto path = Path("index");
  ASSERT_TRUE(SaveIndex(path, index).ok());
  auto back = LoadIndex(path);
  ASSERT_TRUE(back.ok()) << back.status();
  auto queries = testutil::RandomCodes(10, 32, /*seed=*/4, /*clusters=*/8);
  for (const auto& q : queries) {
    EXPECT_EQ(Sorted(*back->Search(q, 3)), Sorted(*index.Search(q, 3)));
  }
}

TEST_F(StorageTest, TableRoundTripWithFeaturesAndHash) {
  FloatMatrix data = GenerateDataset(DatasetKind::kNusWide, 100);
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  auto hash = std::shared_ptr<const SimilarityHash>(
      SpectralHashing::Train(data, hopts).ValueOrDie().release());
  auto table =
      HammingTable::FromFeatures(std::move(data), hash).ValueOrDie();
  auto path = Path("table");
  ASSERT_TRUE(SaveTable(path, table).ok());
  auto back = LoadTable(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->size(), table.size());
  EXPECT_TRUE(back->has_features());
  EXPECT_EQ(back->codes(), table.codes());
  // The reloaded hash must produce identical codes.
  auto q = table.data().Row(7);
  EXPECT_EQ(back->HashQuery(q).ValueOrDie(),
            table.HashQuery(q).ValueOrDie());
}

TEST_F(StorageTest, TableRoundTripCodesOnly) {
  auto codes = testutil::RandomCodes(50, 64);
  auto table = HammingTable::FromCodes(codes).ValueOrDie();
  auto path = Path("codes-table");
  ASSERT_TRUE(SaveTable(path, table).ok());
  auto back = LoadTable(path).ValueOrDie();
  EXPECT_EQ(back.codes(), codes);
  EXPECT_FALSE(back.has_features());
}

TEST_F(StorageTest, FuzzDeserializeNeverCrashes) {
  // Random byte soup must come back as a clean error, never UB.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(static_cast<std::size_t>(
        rng.UniformInt(0, 300)));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    BufferReader r(junk);
    auto idx = DynamicHAIndex::Deserialize(&r);
    // ok() or clean error are both acceptable; no crash is the property.
    if (!idx.ok()) {
      EXPECT_FALSE(idx.status().ToString().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Regressions for fuzz_spill findings (fuzz/fuzz_spill.cc). Both craft
// spill files whose headers lie about sizes; SpillSegmentCursor::Open
// must reject them *before* sizing any allocation from the lie.

namespace {

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::string MakeOneSegmentSpill(const std::string& path) {
  auto writer = SpillFileWriter::Create(path, 1, 64);
  EXPECT_TRUE(writer.ok());
  const uint8_t k[] = {'k', 'e', 'y'};
  const uint8_t v[] = {'v', 'a', 'l'};
  EXPECT_TRUE(writer.ValueOrDie()->Append(0, k, 3, v, 3).ok());
  EXPECT_TRUE(writer.ValueOrDie()->Finish().ok());
  return path;
}

}  // namespace

// Found by fuzz_spill: a flipped num_segments byte (not yet CRC-checked
// at that point in Open) used to size the header allocation, turning one
// mutated byte into a multi-gigabyte zero-filled std::vector.
TEST_F(StorageTest, SpillFuzzRegressionHugeSegmentCount) {
  const std::string path = MakeOneSegmentSpill(Path("spill_huge_segcount"));
  std::vector<uint8_t> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);
  // num_segments is the fourth fixed32 (bytes 12..15); claim ~2^28
  // segments = a ~6 GiB header.
  bytes[14] = 0x00;
  bytes[15] = 0x10;
  WriteAll(path, bytes);
  auto cursor = SpillSegmentCursor::Open(path, 0);
  ASSERT_FALSE(cursor.ok());
  EXPECT_NE(cursor.status().message().find("truncated spill header"),
            std::string::npos);
}

// Hardening from the same audit: a segment index with a *recomputed*
// CRC can claim an extent far past EOF; the claimed bytes bound every
// page allocation in LoadNextPage, so Open must clamp them to the file.
TEST_F(StorageTest, SpillFuzzRegressionLyingSegmentExtent) {
  const std::string path = MakeOneSegmentSpill(Path("spill_lying_extent"));
  std::vector<uint8_t> bytes = ReadAll(path);
  const std::size_t header_bytes = 16 + 24 + 4;  // one segment + CRC
  ASSERT_GT(bytes.size(), header_bytes);
  // The segment's `bytes` field is the second fixed64 of its index entry
  // (file offset 24); claim a 1 TiB segment, then re-frame the header
  // with a valid CRC so only the extent check can catch it.
  for (int i = 0; i < 8; ++i) bytes[24 + i] = 0;
  bytes[29] = 0x01;  // 2^40
  const uint32_t crc = Crc32(bytes.data(), header_bytes - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[header_bytes - 4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  WriteAll(path, bytes);
  auto cursor = SpillSegmentCursor::Open(path, 0);
  ASSERT_FALSE(cursor.ok());
  EXPECT_NE(cursor.status().message().find("segment extent exceeds"),
            std::string::npos);
}

}  // namespace
}  // namespace hamming::storage

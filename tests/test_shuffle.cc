// External-shuffle tests: the paged spill file format (round-trips,
// crash consistency), the map-side budgeted writer, the streaming k-way
// merge with intermediate passes, combiner semantics, and — the core
// contract — byte-identical job outputs and logical counters at every
// shuffle memory budget, with and without task failures.
#include "mapreduce/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "storage/file_io.h"

namespace hamming::mr {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string BytesToString(const std::vector<uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class ShuffleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/hammingdb_shuffle_test_" +
           std::to_string(::testing::UnitTest::GetInstance()
                              ->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Spill file format (storage layer)
// ---------------------------------------------------------------------------

TEST_F(ShuffleTest, SpillFileMultiSegmentMultiPageRoundTrip) {
  const std::string path = Path("roundtrip.spill");
  // A 64-byte page target forces many pages per segment.
  auto writer = storage::SpillFileWriter::Create(path, 3, 64);
  ASSERT_TRUE(writer.ok()) << writer.status();
  std::vector<std::vector<std::pair<std::string, std::string>>> expect(3);
  for (std::size_t seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 50; ++i) {
      std::string key = "k" + std::to_string(seg) + "-" + std::to_string(i);
      std::string value(seg * 7 + i % 13, 'v');
      auto kb = Bytes(key);
      auto vb = Bytes(value);
      ASSERT_TRUE((*writer)
                      ->Append(seg, kb.data(), kb.size(), vb.data(),
                               vb.size())
                      .ok());
      expect[seg].push_back({key, value});
    }
  }
  ASSERT_TRUE((*writer)->Finish().ok());
  for (std::size_t seg = 0; seg < 3; ++seg) {
    EXPECT_EQ((*writer)->segments()[seg].records, 50u);
  }

  for (std::size_t seg = 0; seg < 3; ++seg) {
    auto cursor = storage::SpillSegmentCursor::Open(path, seg);
    ASSERT_TRUE(cursor.ok()) << cursor.status();
    EXPECT_EQ((*cursor)->records(), 50u);
    std::vector<uint8_t> key, value;
    bool done = false;
    for (const auto& [k, v] : expect[seg]) {
      ASSERT_TRUE((*cursor)->Next(&key, &value, &done).ok());
      ASSERT_FALSE(done);
      EXPECT_EQ(BytesToString(key), k);
      EXPECT_EQ(BytesToString(value), v);
    }
    ASSERT_TRUE((*cursor)->Next(&key, &value, &done).ok());
    EXPECT_TRUE(done);
  }
}

TEST_F(ShuffleTest, OversizedRecordGetsItsOwnPage) {
  const std::string path = Path("big.spill");
  auto writer = storage::SpillFileWriter::Create(path, 1, 32);
  ASSERT_TRUE(writer.ok());
  auto small = Bytes("s");
  std::vector<uint8_t> big(1000, 0xab);
  auto key = Bytes("k");
  ASSERT_TRUE(
      (*writer)->Append(0, key.data(), key.size(), small.data(), 1).ok());
  ASSERT_TRUE(
      (*writer)->Append(0, key.data(), key.size(), big.data(), big.size())
          .ok());
  ASSERT_TRUE(
      (*writer)->Append(0, key.data(), key.size(), small.data(), 1).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  auto cursor = storage::SpillSegmentCursor::Open(path, 0);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  std::vector<uint8_t> k, v;
  bool done = false;
  ASSERT_TRUE((*cursor)->Next(&k, &v, &done).ok());
  EXPECT_EQ(v.size(), 1u);
  ASSERT_TRUE((*cursor)->Next(&k, &v, &done).ok());
  EXPECT_EQ(v, big);
  ASSERT_TRUE((*cursor)->Next(&k, &v, &done).ok());
  EXPECT_EQ(v.size(), 1u);
  ASSERT_TRUE((*cursor)->Next(&k, &v, &done).ok());
  EXPECT_TRUE(done);
}

// Writes a small three-segment spill file and returns its path.
std::string WriteFixtureSpill(const std::string& path) {
  auto writer = storage::SpillFileWriter::Create(path, 3, 64);
  EXPECT_TRUE(writer.ok());
  for (std::size_t seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 20; ++i) {
      auto kb = Bytes("key" + std::to_string(i));
      auto vb = Bytes("value" + std::to_string(seg));
      EXPECT_TRUE(
          (*writer)->Append(seg, kb.data(), kb.size(), vb.data(), vb.size())
              .ok());
    }
  }
  EXPECT_TRUE((*writer)->Finish().ok());
  return path;
}

Status DrainSegment(const std::string& path, std::size_t segment) {
  auto cursor = storage::SpillSegmentCursor::Open(path, segment);
  if (!cursor.ok()) return cursor.status();
  std::vector<uint8_t> k, v;
  bool done = false;
  while (true) {
    Status st = (*cursor)->Next(&k, &v, &done);
    if (!st.ok()) return st;
    if (done) return Status::OK();
  }
}

TEST_F(ShuffleTest, TruncatedSpillFileFailsWithIOError) {
  const std::string path = WriteFixtureSpill(Path("trunc.spill"));
  const auto full_size = fs::file_size(path);
  // Truncation anywhere — inside the trailing pages, mid-file, or into
  // the header itself — must surface as IOError, never as short data.
  for (uintmax_t keep :
       {full_size - 1, full_size / 2, uintmax_t{20}, uintmax_t{3}}) {
    fs::resize_file(path, keep);
    bool failed = false;
    for (std::size_t seg = 0; seg < 3; ++seg) {
      Status st = DrainSegment(path, seg);
      if (!st.ok()) {
        EXPECT_TRUE(st.IsIOError()) << st;
        failed = true;
      }
    }
    EXPECT_TRUE(failed) << "keep=" << keep;
  }
}

TEST_F(ShuffleTest, BitFlipAnywhereFailsWithIOError) {
  const std::string path = WriteFixtureSpill(Path("bitflip.spill"));
  std::ifstream in(path, std::ios::binary);
  std::vector<char> pristine((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit at a spread of offsets covering the header, the segment
  // index, and page payloads; every corruption must be caught by a CRC
  // (or structural) check on some segment.
  for (std::size_t offset = 0; offset < pristine.size();
       offset += pristine.size() / 23 + 1) {
    std::vector<char> corrupt = pristine;
    corrupt[offset] ^= 0x10;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(),
                static_cast<std::streamsize>(corrupt.size()));
    }
    bool failed = false;
    for (std::size_t seg = 0; seg < 3; ++seg) {
      Status st = DrainSegment(path, seg);
      if (!st.ok()) {
        EXPECT_TRUE(st.IsIOError()) << "offset " << offset << ": " << st;
        failed = true;
      }
    }
    EXPECT_TRUE(failed) << "bit flip at offset " << offset << " undetected";
  }
}

// ---------------------------------------------------------------------------
// ShuffleWriter / ShuffleMerger units
// ---------------------------------------------------------------------------

TEST_F(ShuffleTest, WriterSpillsAtBudgetAndMergerRestoresOrder) {
  ShuffleWriterOptions wopts;
  wopts.num_partitions = 2;
  wopts.memory_budget_bytes = 128;  // tiny: many spills
  wopts.dir = dir_;
  wopts.file_stem = "unit";
  int spill_events = 0;
  ShuffleWriter writer(std::move(wopts),
                       [&](uint64_t, uint64_t) { ++spill_events; });
  // Interleave keys so each spill holds a sorted fraction of them.
  for (int i = 0; i < 100; ++i) {
    Record rec;
    rec.key = Bytes("k" + std::to_string(i % 10));
    rec.value = Bytes("v" + std::to_string(i));
    ASSERT_TRUE(writer.Add(i % 2, std::move(rec)).ok());
  }
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_GT(writer.spill_count(), 1);
  EXPECT_EQ(writer.spill_count(), spill_events);
  EXPECT_GT(writer.spilled_bytes(), 0);
  auto spills = writer.TakeSpills();
  ASSERT_EQ(spills.size(), static_cast<std::size_t>(writer.spill_count()));

  for (std::size_t partition = 0; partition < 2; ++partition) {
    std::vector<SegmentSource> sources;
    for (const auto& f : spills) {
      if (f->segments()[partition].records == 0) continue;
      sources.push_back({f, partition});
    }
    ShuffleMergerOptions mopts;
    mopts.dir = dir_;
    mopts.file_stem = "unit-merge-p" + std::to_string(partition);
    ShuffleMerger merger(std::move(sources), std::move(mopts));
    ASSERT_TRUE(merger.Open().ok());
    EXPECT_EQ(merger.records(), 50u);
    Record rec;
    bool done = false;
    std::vector<uint8_t> prev_key;
    std::string prev_value;
    uint64_t n = 0;
    ASSERT_TRUE(merger.Next(&rec, &done).ok());
    while (!done) {
      if (n > 0) {
        ASSERT_LE(prev_key, rec.key);  // globally sorted
        if (prev_key == rec.key) {
          // Ties come out in emission order: values for one key were
          // emitted with increasing i, so numeric order must survive.
          int a = std::stoi(prev_value.substr(1));
          int b = std::stoi(BytesToString(rec.value).substr(1));
          ASSERT_LT(a, b);
        }
      }
      prev_key = rec.key;
      prev_value = BytesToString(rec.value);
      ++n;
      ASSERT_TRUE(merger.Next(&rec, &done).ok());
    }
    EXPECT_EQ(n, 50u);
  }
}

TEST_F(ShuffleTest, MergerRunsIntermediatePassesUnderFaninCap) {
  // 9 single-record runs with a fan-in cap of 3: one intermediate pass
  // (3 chunks of 3) then a final 3-way merge.
  std::vector<SpillFileRef> files;
  std::vector<SegmentSource> sources;
  for (int i = 0; i < 9; ++i) {
    ShuffleWriterOptions wopts;
    wopts.num_partitions = 1;
    wopts.dir = dir_;
    wopts.file_stem = "run" + std::to_string(i);
    ShuffleWriter writer(std::move(wopts));
    Record rec;
    rec.key = Bytes("key" + std::to_string(i % 4));
    rec.value = Bytes("v" + std::to_string(i));
    ASSERT_TRUE(writer.Add(0, std::move(rec)).ok());
    ASSERT_TRUE(writer.Flush().ok());
    auto spills = writer.TakeSpills();
    ASSERT_EQ(spills.size(), 1u);
    sources.push_back({spills[0], 0});
    files.push_back(spills[0]);
  }
  ShuffleMergerOptions mopts;
  mopts.max_fanin = 3;
  mopts.dir = dir_;
  mopts.file_stem = "capped";
  int spill_events = 0;
  mopts.on_spill = [&](uint64_t, uint64_t) { ++spill_events; };
  ShuffleMerger merger(std::move(sources), std::move(mopts));
  ASSERT_TRUE(merger.Open().ok());
  EXPECT_EQ(merger.merge_passes(), 1);
  EXPECT_EQ(merger.spill_count(), 3);  // three intermediate runs written
  EXPECT_EQ(merger.spill_count(), spill_events);
  // 9 sources consumed by the intermediate pass + 3 by the final merge.
  EXPECT_EQ(merger.fanin(), 12);
  EXPECT_EQ(merger.records(), 9u);

  Record rec;
  bool done = false;
  std::vector<std::string> keys;
  std::vector<std::string> values;
  ASSERT_TRUE(merger.Next(&rec, &done).ok());
  while (!done) {
    keys.push_back(BytesToString(rec.key));
    values.push_back(BytesToString(rec.value));
    ASSERT_TRUE(merger.Next(&rec, &done).ok());
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Equal keys preserve run order: key0 came from runs 0, 4, 8.
  EXPECT_EQ(keys[0], "key0");
  EXPECT_EQ((std::vector<std::string>{values[0], values[1], values[2]}),
            (std::vector<std::string>{"v0", "v4", "v8"}));
}

TEST_F(ShuffleTest, CombinerKeyChangeIsInvalidArgument) {
  std::vector<Record> records;
  records.push_back({Bytes("a"), Bytes("1")});
  records.push_back({Bytes("a"), Bytes("2")});
  CombineFn bad = [](const std::vector<uint8_t>&,
                     const std::vector<std::vector<uint8_t>>& values,
                     Emitter* out) -> Status {
    out->Emit(Bytes("different"), Bytes(std::to_string(values.size())));
    return Status::OK();
  };
  int64_t in = 0, out_count = 0;
  Status st = SortAndCombine(&records, bad, &in, &out_count);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st;
}

// ---------------------------------------------------------------------------
// Job-level budget identity
// ---------------------------------------------------------------------------

JobSpec CountJob(int num_records, int num_keys, std::size_t num_reducers) {
  JobSpec spec;
  spec.name = "count";
  std::vector<Record> input;
  for (int i = 0; i < num_records; ++i) {
    input.push_back({{}, Bytes("key" + std::to_string(i % num_keys))});
  }
  spec.input_splits = SplitEvenly(std::move(input), 4);
  spec.map_fn = [](const Record& rec, Emitter* out) -> Status {
    out->Emit(rec.value, Bytes("1"));
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>& values,
                      Emitter* out) -> Status {
    int64_t total = 0;
    for (const auto& v : values) total += std::stoll(BytesToString(v));
    out->Emit(key, Bytes(std::to_string(total)));
    return Status::OK();
  };
  spec.options.num_reducers = num_reducers;
  return spec;
}

// The sum-friendly combiner for CountJob (same fold as its reducer).
CombineFn CountCombiner() {
  return [](const std::vector<uint8_t>& key,
            const std::vector<std::vector<uint8_t>>& values,
            Emitter* out) -> Status {
    int64_t total = 0;
    for (const auto& v : values) total += std::stoll(BytesToString(v));
    out->Emit(key, Bytes(std::to_string(total)));
    return Status::OK();
  };
}

testing::AssertionResult SameOutputs(
    const std::vector<std::vector<Record>>& a,
    const std::vector<std::vector<Record>>& b) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure() << "partition counts differ";
  }
  for (std::size_t p = 0; p < a.size(); ++p) {
    if (a[p].size() != b[p].size()) {
      return testing::AssertionFailure()
             << "partition " << p << " sizes: " << a[p].size() << " vs "
             << b[p].size();
    }
    for (std::size_t i = 0; i < a[p].size(); ++i) {
      if (a[p][i].key != b[p][i].key || a[p][i].value != b[p][i].value) {
        return testing::AssertionFailure()
               << "partition " << p << " record " << i << " differs";
      }
    }
  }
  return testing::AssertionSuccess();
}

// The logical counters every budget must agree on (physical spill
// counters legitimately differ).
std::vector<const char*> LogicalCounters() {
  return {kMapInputRecords, kMapOutputRecords, kShuffleBytes,
          kReduceInputGroups, kReduceOutputRecords};
}

TEST_F(ShuffleTest, OutputsAndLogicalCountersIdenticalAtEveryBudget) {
  Cluster base_cluster({4, 2, 4});
  JobSpec base_spec = CountJob(400, 17, 3);
  auto base = RunJob(base_spec, &base_cluster);
  ASSERT_TRUE(base.ok()) << base.status();
  // Under a HAMMING_SHUFFLE_BUDGET override even the "unlimited" baseline
  // runs externally (that is the override's whole point), so the
  // no-spills assertion only applies to a plain environment.
  if (std::getenv("HAMMING_SHUFFLE_BUDGET") == nullptr) {
    EXPECT_EQ(base->counters.Get(kShuffleSpills), 0);
  }

  for (std::size_t budget : {std::size_t{256}, std::size_t{4} << 10,
                             std::size_t{1} << 20}) {
    Cluster cluster({4, 2, 4});
    JobSpec spec = CountJob(400, 17, 3);
    spec.options.shuffle_memory_bytes = budget;
    spec.options.shuffle_dir = dir_;
    auto result = RunJob(spec, &cluster);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(SameOutputs(base->outputs, result->outputs))
        << "budget " << budget;
    for (const char* name : LogicalCounters()) {
      EXPECT_EQ(base->counters.Get(name), result->counters.Get(name))
          << name << " at budget " << budget;
    }
    // The external path actually ran: spills happened and were traced.
    EXPECT_GT(result->counters.Get(kShuffleSpills), 0) << budget;
    EXPECT_GT(result->counters.Get(kShuffleSpilledBytes), 0) << budget;
    EXPECT_GT(result->counters.Get(kShuffleMergeFanIn), 0) << budget;
    EXPECT_EQ(result->trace.Count(JobEventType::kSpill),
              result->counters.Get(kShuffleSpills));
    EXPECT_EQ(result->trace.Count(JobEventType::kMergePass), 3);
    // Tighter budget, more spills.
    if (budget == 256) {
      EXPECT_GT(result->counters.Get(kShuffleSpills), 4);
    }
  }
}

TEST_F(ShuffleTest, CombinerPreservesOutputsAndCutsSpilledBytes) {
  Cluster plain_cluster({4, 2, 4});
  auto plain = RunJob(CountJob(600, 11, 3), &plain_cluster);
  ASSERT_TRUE(plain.ok()) << plain.status();

  for (std::size_t budget :
       {kUnlimitedShuffleMemory, std::size_t{1} << 10}) {
    Cluster cluster({4, 2, 4});
    JobSpec spec = CountJob(600, 11, 3);
    spec.combine_fn = CountCombiner();
    spec.options.shuffle_memory_bytes = budget;
    spec.options.shuffle_dir = dir_;
    auto combined = RunJob(spec, &cluster);
    ASSERT_TRUE(combined.ok()) << combined.status();
    EXPECT_TRUE(SameOutputs(plain->outputs, combined->outputs));
    // Logical shuffle accounting is charged at emission, pre-combining.
    EXPECT_EQ(plain->counters.Get(kShuffleBytes),
              combined->counters.Get(kShuffleBytes));
    EXPECT_GT(combined->counters.Get(kCombineInputRecords), 0);
    EXPECT_GT(combined->counters.Get(kCombineInputRecords),
              combined->counters.Get(kCombineOutputRecords));
  }

  // With a finite budget the combiner shrinks what hits disk.
  auto spilled = [&](CombineFn combiner) -> int64_t {
    Cluster cluster({4, 2, 4});
    JobSpec spec = CountJob(600, 11, 3);
    spec.combine_fn = std::move(combiner);
    spec.options.shuffle_memory_bytes = std::size_t{1} << 10;
    spec.options.shuffle_dir = dir_;
    auto result = RunJob(spec, &cluster);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->counters.Get(kShuffleSpilledBytes) : 0;
  };
  EXPECT_LT(spilled(CountCombiner()), spilled(nullptr));
}

TEST_F(ShuffleTest, CombinerKeyChangeFailsTheJob) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = CountJob(100, 5, 2);
  spec.combine_fn = [](const std::vector<uint8_t>&,
                       const std::vector<std::vector<uint8_t>>&,
                       Emitter* out) -> Status {
    out->Emit(Bytes("hijacked"), Bytes("0"));
    return Status::OK();
  };
  spec.options.shuffle_memory_bytes = 256;
  spec.options.shuffle_dir = dir_;
  auto result = RunJob(spec, &cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
}

TEST_F(ShuffleTest, SmallFaninForcesIntermediatePassesWithoutChangingOutput) {
  Cluster base_cluster({4, 2, 4});
  auto base = RunJob(CountJob(500, 13, 2), &base_cluster);
  ASSERT_TRUE(base.ok()) << base.status();

  Cluster cluster({4, 2, 4});
  JobSpec spec = CountJob(500, 13, 2);
  spec.options.shuffle_memory_bytes = 256;  // many spills per map
  spec.options.shuffle_max_merge_fanin = 2;  // worst-case merge tree
  spec.options.shuffle_dir = dir_;
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(SameOutputs(base->outputs, result->outputs));
  // Reducers wrote intermediate merge runs (spills beyond the map side's)
  // and their traces say so.
  bool reduce_spilled = false;
  for (const JobEvent& e : result->trace.events()) {
    if (e.type == JobEventType::kSpill && e.kind == TaskKind::kReduce) {
      reduce_spilled = true;
    }
  }
  EXPECT_TRUE(reduce_spilled);
}

TEST_F(ShuffleTest, FaninBelowTwoIsRejected) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = CountJob(10, 2, 1);
  spec.options.shuffle_memory_bytes = 256;
  spec.options.shuffle_max_merge_fanin = 1;
  auto result = RunJob(spec, &cluster);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(ShuffleTest, MapOnlyJobSpillsAndMaterializesIdentically) {
  auto make = [&](std::size_t budget) {
    JobSpec spec = CountJob(300, 9, 3);
    spec.reduce_fn = nullptr;  // map-only
    spec.options.shuffle_memory_bytes = budget;
    spec.options.shuffle_dir = dir_;
    return spec;
  };
  Cluster base_cluster({4, 2, 4});
  auto base = RunJob(make(kUnlimitedShuffleMemory), &base_cluster);
  ASSERT_TRUE(base.ok()) << base.status();
  Cluster cluster({4, 2, 4});
  auto external = RunJob(make(512), &cluster);
  ASSERT_TRUE(external.ok()) << external.status();
  EXPECT_TRUE(SameOutputs(base->outputs, external->outputs));
  EXPECT_GT(external->counters.Get(kShuffleSpills), 0);
  EXPECT_GT(external->counters.Get(kShuffleMergeFanIn), 0);
}

// ---------------------------------------------------------------------------
// Crash consistency at the job level
// ---------------------------------------------------------------------------

TEST_F(ShuffleTest, TaskThatFailsAfterSpillingRetriesToIdenticalResult) {
  Cluster base_cluster({4, 2, 4});
  JobSpec base_spec = CountJob(400, 17, 3);
  base_spec.options.shuffle_memory_bytes = 256;
  base_spec.options.shuffle_dir = dir_;
  auto base = RunJob(base_spec, &base_cluster);
  ASSERT_TRUE(base.ok()) << base.status();

  // Map task 1 and reduce task 0 fail mid-input on their first attempts —
  // *after* the map attempt has already spilled runs to disk (budget 256
  // spills every few records). The retries must produce byte-identical
  // outputs and counters: losing attempts' spill files are discarded with
  // the attempt and never leak into the winners' merges.
  Cluster cluster({4, 2, 4});
  JobSpec spec = CountJob(400, 17, 3);
  spec.options.shuffle_memory_bytes = 256;
  spec.options.shuffle_dir = dir_;
  spec.options.max_attempts = 3;
  spec.options.fault = std::make_shared<TargetedFaultInjector>(
      std::vector<TargetedFault>{
          {TaskKind::kMap, 1, /*fail_first_attempts=*/2, 0.0},
          {TaskKind::kReduce, 0, /*fail_first_attempts=*/1, 0.0},
      });
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(SameOutputs(base->outputs, result->outputs));
  EXPECT_EQ(base->counters.Snapshot(), result->counters.Snapshot());
  EXPECT_EQ(result->trace.Stats().failed, 3);
}

TEST_F(ShuffleTest, SpillDirectoryIsRemovedAfterTheJob) {
  Cluster cluster({4, 2, 4});
  JobSpec spec = CountJob(200, 7, 2);
  spec.options.shuffle_memory_bytes = 256;
  spec.options.shuffle_dir = dir_;
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->counters.Get(kShuffleSpills), 0);
  // The job's private subdirectory (and every spill file) is gone; only
  // the base directory we handed it remains.
  EXPECT_TRUE(fs::is_empty(dir_)) << "spill files leaked in " << dir_;
}

}  // namespace
}  // namespace hamming::mr

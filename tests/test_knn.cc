#include <gtest/gtest.h>

#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "index/dynamic_ha_index.h"
#include "knn/e2lsh.h"
#include "knn/exact_knn.h"
#include "knn/hamming_knn.h"
#include "knn/lsb_tree.h"

namespace hamming {
namespace {

class KnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = GenerateDataset(DatasetKind::kNusWide, 500);
    queries_ = GenerateQueries(DatasetKind::kNusWide, 10);
  }
  FloatMatrix data_;
  FloatMatrix queries_;
};

TEST_F(KnnTest, ExactKnnBasics) {
  auto nn = ExactKnn(data_, data_.Row(0), 5);
  ASSERT_EQ(nn.size(), 5u);
  EXPECT_EQ(nn[0].id, 0u);  // the point itself
  EXPECT_NEAR(nn[0].distance, 0.0, 1e-12);
  for (std::size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].distance, nn[i].distance);
  }
}

TEST_F(KnnTest, ExactKnnMatchesBruteForce) {
  auto q = queries_.Row(0);
  auto nn = ExactKnn(data_, q, 3);
  // Brute-force the true nearest.
  double best = 1e300;
  std::size_t best_id = 0;
  for (std::size_t i = 0; i < data_.rows(); ++i) {
    double d = FloatMatrix::L2(data_.Row(i), q);
    if (d < best) {
      best = d;
      best_id = i;
    }
  }
  EXPECT_EQ(nn[0].id, best_id);
  EXPECT_NEAR(nn[0].distance, best, 1e-9);
}

TEST_F(KnnTest, ExactKnnClampsToDatasetSize) {
  FloatMatrix tiny(2, data_.cols());
  auto nn = ExactKnn(tiny, data_.Row(0), 10);
  EXPECT_EQ(nn.size(), 2u);
}

TEST_F(KnnTest, RecallComputation) {
  std::vector<Neighbor> exact{{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}};
  EXPECT_DOUBLE_EQ(RecallAtK(exact, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(exact, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(exact, {9, 8}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1}), 1.0);
}

TEST_F(KnnTest, ExactKnnJoinShape) {
  FloatMatrix outer = data_.GatherRows({0, 1, 2});
  auto rows = ExactKnnJoin(outer, data_, 4);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(rows[0][0].id, 0u);
}

TEST_F(KnnTest, HammingKnnFindsGoodNeighbors) {
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  auto hash = SpectralHashing::Train(data_, hopts).ValueOrDie();
  auto codes = hash->HashAll(data_);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  HammingKnnSearcher searcher(&index, hash.get(), &data_);

  double recall = 0.0;
  for (std::size_t qi = 0; qi < queries_.rows(); ++qi) {
    auto approx = searcher.Search(queries_.Row(qi), 10);
    ASSERT_TRUE(approx.ok());
    ASSERT_EQ(approx->size(), 10u);
    auto exact = ExactKnn(data_, queries_.Row(qi), 10);
    std::vector<std::size_t> ids;
    for (const auto& n : *approx) ids.push_back(n.id);
    recall += RecallAtK(exact, ids);
  }
  recall /= static_cast<double>(queries_.rows());
  // Approximate, but must be far better than random (10/500 = 0.02).
  EXPECT_GT(recall, 0.4) << "hamming kNN recall too low";
}

TEST_F(KnnTest, HammingKnnEscalatesThreshold) {
  // With a tiny initial h and an exotic query, escalation must still
  // produce k results (up to dataset size).
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  auto hash = SpectralHashing::Train(data_, hopts).ValueOrDie();
  auto codes = hash->HashAll(data_);
  DynamicHAIndex index;
  ASSERT_TRUE(index.Build(codes).ok());
  HammingKnnOptions kopts;
  kopts.initial_h = 0;
  kopts.h_step = 1;
  HammingKnnSearcher searcher(&index, hash.get(), &data_, kopts);
  std::vector<double> weird(data_.cols(), 1e6);
  auto got = searcher.Search(weird, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 5u);
}

TEST_F(KnnTest, E2LshValidationAndRecall) {
  E2LshOptions opts;
  EXPECT_FALSE(E2Lsh::Build(FloatMatrix(), opts).ok());

  opts.num_tables = 16;
  opts.hashes_per_table = 4;
  opts.bucket_width = 16.0;
  auto lsh = E2Lsh::Build(data_, opts).ValueOrDie();
  EXPECT_GT(lsh.MemoryBytes(), 0u);

  double recall = 0.0;
  for (std::size_t qi = 0; qi < queries_.rows(); ++qi) {
    auto approx = lsh.Search(queries_.Row(qi), 10);
    auto exact = ExactKnn(data_, queries_.Row(qi), 10);
    std::vector<std::size_t> ids;
    for (const auto& n : approx) ids.push_back(n.id);
    recall += RecallAtK(exact, ids);
  }
  recall /= static_cast<double>(queries_.rows());
  EXPECT_GT(recall, 0.2) << "E2LSH recall implausibly low";
}

TEST_F(KnnTest, LsbForestRecall) {
  LsbTreeOptions opts;
  opts.num_trees = 10;
  opts.candidates_per_tree = 32;
  auto forest = LsbForest::Build(data_, opts).ValueOrDie();
  EXPECT_EQ(forest.num_trees(), 10u);
  EXPECT_GT(forest.MemoryBytes(), 0u);

  double recall = 0.0;
  for (std::size_t qi = 0; qi < queries_.rows(); ++qi) {
    auto approx = forest.Search(queries_.Row(qi), 10);
    auto exact = ExactKnn(data_, queries_.Row(qi), 10);
    std::vector<std::size_t> ids;
    for (const auto& n : approx) ids.push_back(n.id);
    recall += RecallAtK(exact, ids);
  }
  recall /= static_cast<double>(queries_.rows());
  EXPECT_GT(recall, 0.3) << "LSB forest recall implausibly low";
}

TEST_F(KnnTest, LsbForestRejectsEmptyData) {
  LsbTreeOptions opts;
  EXPECT_FALSE(LsbForest::Build(FloatMatrix(), opts).ok());
}

}  // namespace
}  // namespace hamming

#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "observability/stopwatch.h"

namespace hamming {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(&pool, 200, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  ParallelFor(&pool, 16, [&](std::size_t) {
    int now = ++concurrent;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    obs::Stopwatch w;
    while (w.ElapsedMillis() < 5) {
    }
    --concurrent;
  });
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GT(pool.num_threads(), 0u);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  obs::Stopwatch w;
  while (w.ElapsedMillis() < 2) {
  }
  EXPECT_GE(w.ElapsedNanos(), 2000000);
  EXPECT_GE(w.ElapsedMicros(), 2000.0);
  EXPECT_GE(w.ElapsedSeconds(), 0.002);
  w.Restart();
  EXPECT_LT(w.ElapsedMillis(), 2.0);
}

}  // namespace
}  // namespace hamming

#include "common/serde.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hamming {
namespace {

TEST(Serde, FixedWidthRoundTrip) {
  BufferWriter w;
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefull);
  BufferReader r(w.buffer());
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(r.GetFixed32(&a).ok());
  ASSERT_TRUE(r.GetFixed64(&b).ok());
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, VarintBoundaries) {
  BufferWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 16383, 16384,
                             0xffffffffull, ~0ull};
  for (uint64_t v : values) w.PutVarint64(v);
  BufferReader r(w.buffer());
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(r.GetVarint64(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(Serde, VarintSizes) {
  BufferWriter w;
  w.PutVarint64(127);
  EXPECT_EQ(w.size(), 1u);
  w.Clear();
  w.PutVarint64(128);
  EXPECT_EQ(w.size(), 2u);
}

TEST(Serde, SignedZigzag) {
  BufferWriter w;
  const int64_t values[] = {0, -1, 1, -64, 63, -1000000,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutVarint64Signed(v);
  BufferReader r(w.buffer());
  for (int64_t v : values) {
    int64_t got;
    ASSERT_TRUE(r.GetVarint64Signed(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(Serde, DoubleRoundTrip) {
  BufferWriter w;
  const double values[] = {0.0, -0.0, 1.5, -3.25e108, 1e-300};
  for (double v : values) w.PutDouble(v);
  BufferReader r(w.buffer());
  for (double v : values) {
    double got;
    ASSERT_TRUE(r.GetDouble(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(Serde, StringAndBytes) {
  BufferWriter w;
  w.PutString("hello");
  w.PutString("");
  std::vector<uint8_t> blob{1, 2, 3, 255};
  w.PutBytes(blob.data(), blob.size());
  BufferReader r(w.buffer());
  std::string s1, s2;
  std::vector<uint8_t> back;
  ASSERT_TRUE(r.GetString(&s1).ok());
  ASSERT_TRUE(r.GetString(&s2).ok());
  ASSERT_TRUE(r.GetBytes(&back).ok());
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(back, blob);
}

TEST(Serde, TruncatedReadsFailCleanly) {
  BufferWriter w;
  w.PutFixed64(42);
  BufferReader r(w.buffer().data(), 3);
  uint64_t v;
  EXPECT_TRUE(r.GetFixed64(&v).IsIOError());

  BufferWriter w2;
  w2.PutString("long string payload");
  BufferReader r2(w2.buffer().data(), 4);
  std::string s;
  EXPECT_TRUE(r2.GetString(&s).IsIOError());
}

TEST(Serde, UnterminatedVarintFails) {
  std::vector<uint8_t> bad{0x80, 0x80, 0x80};
  BufferReader r(bad);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsIOError());
}

TEST(Serde, OverlongVarintFails) {
  std::vector<uint8_t> bad(11, 0x80);
  bad.push_back(0x01);
  BufferReader r(bad);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsIOError());
}

TEST(Serde, CanonicalMaxVarintDecodes) {
  // ~0ull is nine 0xff continuation bytes and a final 0x01: the largest
  // canonical encoding, whose 10th byte carries exactly one payload bit.
  std::vector<uint8_t> max_enc(9, 0xff);
  max_enc.push_back(0x01);
  BufferReader r(max_enc);
  uint64_t v = 0;
  ASSERT_TRUE(r.GetVarint64(&v).ok());
  EXPECT_EQ(v, ~0ull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, TenthByteOverflowBitsRejected) {
  // A 10th byte with any payload bit above bit 0 encodes value bits
  // beyond bit 63; the old decoder silently dropped them and returned a
  // wrong value. Every such terminator must be an IOError.
  for (uint8_t last : {0x02, 0x03, 0x40, 0x7e, 0x7f}) {
    std::vector<uint8_t> bad(9, 0x80);  // payload bits all zero
    bad.push_back(last);
    BufferReader r(bad);
    uint64_t v = 0;
    EXPECT_TRUE(r.GetVarint64(&v).IsIOError()) << "last byte " << int(last);
  }
  // Same with nonzero low payload: the canonical-max prefix plus a
  // 10th byte of 0x7f would decode to ~0ull if the high bits were
  // dropped — indistinguishable from the canonical encoding's value.
  std::vector<uint8_t> bad(9, 0xff);
  bad.push_back(0x7f);
  BufferReader r(bad);
  uint64_t v = 0;
  EXPECT_TRUE(r.GetVarint64(&v).IsIOError());
}

TEST(Serde, NonCanonicalTrailingZeroRejected) {
  // [0x80, 0x00] is an overlong encoding of 0 and [0xff, 0x00] one of
  // 0x7f; the writer emits single bytes for both, so a trailing zero
  // continuation only ever appears in corrupt or adversarial buffers.
  for (auto bad : {std::vector<uint8_t>{0x80, 0x00},
                   std::vector<uint8_t>{0xff, 0x00},
                   std::vector<uint8_t>{0x80, 0x80, 0x00}}) {
    BufferReader r(bad);
    uint64_t v = 0;
    EXPECT_TRUE(r.GetVarint64(&v).IsIOError());
  }
  // The plain single-byte zero stays valid.
  std::vector<uint8_t> zero{0x00};
  BufferReader r(zero);
  uint64_t v = 1;
  ASSERT_TRUE(r.GetVarint64(&v).ok());
  EXPECT_EQ(v, 0u);
}

TEST(Serde, RandomizedMixedRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    BufferWriter w;
    std::vector<uint64_t> ints;
    std::vector<double> doubles;
    for (int i = 0; i < 50; ++i) {
      uint64_t v = rng.NextWord() >> (rng.UniformInt(0, 63));
      double d = rng.Gaussian();
      ints.push_back(v);
      doubles.push_back(d);
      w.PutVarint64(v);
      w.PutDouble(d);
    }
    BufferReader r(w.buffer());
    for (int i = 0; i < 50; ++i) {
      uint64_t v;
      double d;
      ASSERT_TRUE(r.GetVarint64(&v).ok());
      ASSERT_TRUE(r.GetDouble(&d).ok());
      EXPECT_EQ(v, ints[i]);
      EXPECT_EQ(d, doubles[i]);
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

}  // namespace
}  // namespace hamming

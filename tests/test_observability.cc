// The observability layer's contract: log-linear histogram bucketing is
// exact at the edges (with interpolated percentiles inside the pinned
// error bound), shard merges are deterministic under concurrent
// recording, runtime metrics are byte-identical across fault-injection
// retries (wall-clock "time." metrics excluded), the JSON escaper
// round-trips hostile strings through JobEventTrace::ToJson, the trace
// collector emits structurally sound Chrome trace events, and every
// index family fills QueryStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include "common/sync.h"
#include <vector>

#include "index/dynamic_ha_index.h"
#include "index/linear_scan.h"
#include "index/multi_hash_table.h"
#include "index/static_ha_index.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "observability/json.h"
#include "observability/memtrack.h"
#include "observability/metrics.h"
#include "observability/query_stats.h"
#include "observability/trace.h"

namespace hamming::obs {
namespace {

// ---- Histogram bucketing --------------------------------------------------

TEST(Metrics, HistogramBucketEdges) {
  // Values below 4 get exact buckets.
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 3u);
  // Octave [4, 8) splits into 4 width-1 sub-buckets (still exact).
  EXPECT_EQ(HistogramBucketOf(4), 4u);
  EXPECT_EQ(HistogramBucketOf(7), 7u);
  // Octave [8, 16): width-2 sub-buckets 8-9, 10-11, 12-13, 14-15.
  EXPECT_EQ(HistogramBucketOf(8), 8u);
  EXPECT_EQ(HistogramBucketOf(9), 8u);
  EXPECT_EQ(HistogramBucketOf(10), 9u);
  EXPECT_EQ(HistogramBucketOf(15), 11u);
  EXPECT_EQ(HistogramBucketOf(16), 12u);
  // Top octave [2^63, 2^64).
  EXPECT_EQ(HistogramBucketOf((uint64_t{1} << 63) - 1),
            kHistogramBuckets - 5);
  EXPECT_EQ(HistogramBucketOf(uint64_t{1} << 63), kHistogramBuckets - 4);
  EXPECT_EQ(HistogramBucketOf(std::numeric_limits<uint64_t>::max()),
            kHistogramBuckets - 1);

  EXPECT_EQ(HistogramBucketLowerBound(0), 0u);
  EXPECT_EQ(HistogramBucketLowerBound(1), 1u);
  EXPECT_EQ(HistogramBucketLowerBound(8), 8u);
  EXPECT_EQ(HistogramBucketLowerBound(9), 10u);
  EXPECT_EQ(HistogramBucketLowerBound(kHistogramBuckets - 4),
            uint64_t{1} << 63);
  EXPECT_EQ(HistogramBucketUpperBound(kHistogramBuckets - 1),
            std::numeric_limits<uint64_t>::max());
  // Every bucket's bounds land in their own bucket, buckets tile uint64.
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketOf(HistogramBucketLowerBound(i)), i) << i;
    EXPECT_EQ(HistogramBucketOf(HistogramBucketUpperBound(i)), i) << i;
    if (i + 1 < kHistogramBuckets) {
      EXPECT_EQ(HistogramBucketUpperBound(i) + 1,
                HistogramBucketLowerBound(i + 1))
          << i;
    }
  }
}

TEST(Metrics, HistogramObserveEdgeValues) {
  MetricsRegistry reg;
  MetricId h = reg.Histogram("edges");
  reg.Observe(h, 0);
  reg.Observe(h, 1);
  reg.Observe(h, std::numeric_limits<uint64_t>::max());
  HistogramSnapshot snap = reg.Snapshot().histograms.at("edges");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, std::numeric_limits<uint64_t>::max());
  // Sum wraps (mod 2^64): 0 + 1 + max == 0.
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[kHistogramBuckets - 1], 1u);
}

// ---- Interpolated percentiles ---------------------------------------------

TEST(Metrics, PercentileEmptyAndSingleValue) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Percentile(0.5), 0.0);

  // A single-valued histogram is exact at every quantile: the estimate
  // interpolates inside the bucket but clamps to [min, max].
  for (uint64_t v : {uint64_t{0}, uint64_t{3}, uint64_t{7}, uint64_t{1000},
                     uint64_t{123456789}}) {
    MetricsRegistry reg;
    MetricId h = reg.Histogram("one");
    for (int i = 0; i < 10; ++i) reg.Observe(h, v);
    HistogramSnapshot snap = reg.Snapshot().histograms.at("one");
    for (double q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0}) {
      EXPECT_DOUBLE_EQ(snap.Percentile(q), static_cast<double>(v)) << q;
    }
  }
}

TEST(Metrics, PercentileWorstCaseRelativeErrorBound) {
  // The log-linear layout (4 sub-buckets per octave) bounds any
  // bucket's width at 25% of its lower edge, so an interpolated
  // quantile can never be off by more than 25% relative — the bound
  // that makes p99/p999 usable. Pin it against exact quantiles of a
  // deterministic heavy-tailed sample.
  std::vector<uint64_t> values;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Spread across ~5 orders of magnitude, like latency microseconds.
    values.push_back(50 + (x % 1000) * (x % 97) * (x % 11));
  }
  MetricsRegistry reg;
  MetricId h = reg.Histogram("lat");
  for (uint64_t v : values) reg.Observe(h, v);
  HistogramSnapshot snap = reg.Snapshot().histograms.at("lat");

  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const std::size_t rank = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
    const double exact = static_cast<double>(sorted[rank]);
    const double est = snap.Percentile(q);
    const double rel = std::abs(est - exact) / exact;
    EXPECT_LT(rel, 0.25) << "q=" << q << " exact=" << exact
                         << " est=" << est;
  }
  // Quantiles are monotone in q.
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double est = snap.Percentile(q);
    EXPECT_GE(est, prev) << q;
    prev = est;
  }
}

TEST(Metrics, HistogramDeltaWindows) {
  MetricsRegistry reg;
  MetricId h = reg.Histogram("w");
  reg.Observe(h, 8);
  reg.Observe(h, 100);
  HistogramSnapshot before = reg.Snapshot().histograms.at("w");
  reg.Observe(h, 1000);
  reg.Observe(h, 1000);
  reg.Observe(h, 2000);
  HistogramSnapshot after = reg.Snapshot().histograms.at("w");

  HistogramSnapshot win = HistogramSnapshot::Delta(before, after);
  EXPECT_EQ(win.count, 3u);
  EXPECT_EQ(win.sum, 4000u);
  // min/max are bucket-resolution estimates around [1000, 2000].
  EXPECT_LE(win.min, 1000u);
  EXPECT_GT(win.min, 500u);
  EXPECT_GE(win.max, 2000u);
  EXPECT_LE(win.max, 2500u);
  EXPECT_NEAR(win.Percentile(0.5), 1000.0, 250.0);

  // Empty window: nothing recorded between the snapshots.
  HistogramSnapshot none = HistogramSnapshot::Delta(after, after);
  EXPECT_EQ(none.count, 0u);
  EXPECT_EQ(none.Percentile(0.99), 0.0);
}

TEST(Metrics, CounterGaugeSemantics) {
  MetricsRegistry reg;
  MetricId c = reg.Counter("c");
  MetricId g = reg.Gauge("g");
  // Re-registration returns the same id; kind mismatch does not alias.
  EXPECT_EQ(reg.Counter("c"), c);
  reg.Add(c, 5);
  reg.Add(c, -2);
  reg.Set(g, 10);
  reg.Set(g, 4);  // high-watermark: max wins, not last-write
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3);
  EXPECT_EQ(snap.gauges.at("g"), 10);
}

TEST(Metrics, RegistrationOverflowFallsBackToSink) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < 2 * kMaxMetricsPerRegistry; ++i) {
    MetricId id = reg.Counter("c" + std::to_string(i));
    EXPECT_LT(id, kMaxMetricsPerRegistry);
  }
  EXPECT_LE(reg.NumMetrics(), kMaxMetricsPerRegistry);
}

TEST(Metrics, RegistrationOverflowIsVisibleInSnapshot) {
  MetricsRegistry reg;
  // Healthy registry: the diagnostics counter is present and zero.
  EXPECT_EQ(reg.Snapshot().counters.at("metrics.registration_overflow"), 0);

  constexpr std::size_t kAttempts = 300;
  for (std::size_t i = 0; i < kAttempts; ++i) {
    reg.Counter("overflow_probe_" + std::to_string(i));
  }
  // 255 slots hold distinct metrics (the 256th is the shared sink); the
  // remaining 45 new-name registrations overflowed — and say so.
  EXPECT_EQ(reg.NumMetrics(), kMaxMetricsPerRegistry - 1);
  const uint64_t expect_overflow = kAttempts - (kMaxMetricsPerRegistry - 1);
  EXPECT_EQ(reg.RegistrationOverflows(), expect_overflow);
  EXPECT_EQ(
      static_cast<uint64_t>(
          reg.Snapshot().counters.at("metrics.registration_overflow")),
      expect_overflow);
  // Re-registering an existing name is not an overflow.
  reg.Counter("overflow_probe_0");
  EXPECT_EQ(reg.RegistrationOverflows(), expect_overflow);
}

// Shard-merge determinism: the snapshot of concurrent recording from T
// threads equals the single-threaded reference, for counters, gauges
// and histograms alike — merging is commutative, so scheduling cannot
// show through.
TEST(Metrics, ShardMergeDeterministicUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  MetricsRegistry reference;
  MetricId rc = reference.Counter("ops");
  MetricId rg = reference.Gauge("peak");
  MetricId rh = reference.Histogram("latency");
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      reference.Add(rc, 1);
      reference.Set(rg, t * kPerThread + i);
      reference.Observe(rh, static_cast<uint64_t>(i % 257));
    }
  }

  MetricsRegistry reg;
  MetricId c = reg.Counter("ops");
  MetricId g = reg.Gauge("peak");
  MetricId h = reg.Histogram("latency");
  std::vector<hamming::Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.Add(c, 1);
        reg.Set(g, t * kPerThread + i);
        reg.Observe(h, static_cast<uint64_t>(i % 257));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_TRUE(reg.Snapshot() == reference.Snapshot());
}

TEST(Metrics, SnapshotJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.Add(reg.Counter("a.count"), 7);
  reg.Set(reg.Gauge("b.peak"), 42);
  reg.Observe(reg.Histogram("c.hist"), 9);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":7"), std::string::npos);
  EXPECT_NE(json.find("\"skew_max_over_mean\""), std::string::npos);
}

TEST(Metrics, PeakRssGauge) {
  MetricsRegistry reg;
  RecordPeakRss(&reg);
  RecordPeakRss(nullptr);  // must be a safe no-op
#if defined(__linux__) || defined(__APPLE__)
  EXPECT_GT(reg.Snapshot().gauges.at("process.peak_rss_bytes"), 0);
#endif
}

// ---- Runtime metrics across retries ---------------------------------------

namespace mr = hamming::mr;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

mr::JobSpec WordCountSpec() {
  mr::JobSpec spec;
  spec.name = "obs-wordcount";
  std::vector<mr::Record> input;
  for (int i = 0; i < 200; ++i) {
    input.push_back({{}, Bytes("w" + std::to_string(i % 17))});
  }
  spec.input_splits = mr::SplitEvenly(std::move(input), 4);
  spec.map_fn = [](const mr::Record& rec, mr::Emitter* out) -> Status {
    out->Emit(rec.value, Bytes("1"));
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>& values,
                      mr::Emitter* out) -> Status {
    out->Emit(key, Bytes(std::to_string(values.size())));
    return Status::OK();
  };
  spec.options.num_reducers = 3;
  return spec;
}

// Drops the wall-clock ("time.*") histograms, which legitimately differ
// run to run; everything else the runtime records must be identical.
MetricsSnapshot WithoutTimings(MetricsSnapshot snap) {
  for (auto it = snap.histograms.begin(); it != snap.histograms.end();) {
    if (it->first.rfind("time.", 0) == 0) {
      it = snap.histograms.erase(it);
    } else {
      ++it;
    }
  }
  return snap;
}

TEST(Metrics, RuntimeMetricsIdenticalAcrossFaultRetries) {
  MetricsRegistry clean;
  {
    mr::Cluster cluster({4, 2, 0});
    mr::JobSpec spec = WordCountSpec();
    spec.options.metrics = &clean;
    ASSERT_TRUE(RunJob(spec, &cluster).ok());
  }
  MetricsRegistry faulty;
  {
    mr::Cluster cluster({4, 2, 0});
    mr::JobSpec spec = WordCountSpec();
    spec.options.metrics = &faulty;
    spec.options.max_attempts = 8;
    spec.options.speculation.enabled = true;
    spec.options.speculation.slow_attempt_seconds = 0.02;
    mr::RandomFaultOptions f;
    f.failure_probability = 0.3;
    f.straggler_probability = 0.2;
    f.straggler_delay_seconds = 0.05;
    spec.options.fault = std::make_shared<mr::RandomFaultInjector>(f);
    ASSERT_TRUE(RunJob(spec, &cluster).ok());
  }
  EXPECT_TRUE(WithoutTimings(clean.Snapshot()) ==
              WithoutTimings(faulty.Snapshot()));
}

TEST(Metrics, ReducerLoadReportMatchesHistogram) {
  MetricsRegistry reg;
  mr::Cluster cluster({4, 2, 0});
  mr::JobSpec spec = WordCountSpec();
  spec.options.metrics = &reg;
  auto result = RunJob(spec, &cluster);
  ASSERT_TRUE(result.ok());
  const mr::ReducerLoadReport& load = result->reducer_load;
  ASSERT_EQ(load.records.size(), 3u);
  uint64_t total = 0, max = 0;
  for (uint64_t r : load.records) {
    total += r;
    max = std::max(max, r);
  }
  HistogramSnapshot hist =
      reg.Snapshot().histograms.at("mr.reduce_input_records");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.sum, total);
  EXPECT_EQ(hist.max, max);
  EXPECT_DOUBLE_EQ(hist.SkewMaxOverMean(), load.records_skew);
  // 17 distinct keys over 3 hash-routed reducers: every reducer sees
  // at least one key, and the skew coefficient is >= 1 by definition.
  EXPECT_GE(load.records_skew, 1.0);
}

// External shuffle path: per-reducer load must come out the same whether
// the shuffle ran in memory or through spill files.
TEST(Metrics, ReducerLoadIdenticalAcrossShufflePaths) {
  auto run = [](std::size_t budget) {
    mr::Cluster cluster({4, 2, 0});
    mr::JobSpec spec = WordCountSpec();
    spec.options.shuffle_memory_bytes = budget;
    auto result = RunJob(spec, &cluster);
    EXPECT_TRUE(result.ok());
    return result->reducer_load;
  };
  mr::ReducerLoadReport in_memory = run(mr::kUnlimitedShuffleMemory);
  mr::ReducerLoadReport spilled = run(256);  // force spills + merge
  EXPECT_EQ(in_memory.records, spilled.records);
  EXPECT_EQ(in_memory.bytes, spilled.bytes);
  EXPECT_DOUBLE_EQ(in_memory.records_skew, spilled.records_skew);
}

// ---- JSON escaping --------------------------------------------------------

TEST(ObsJson, EscapeRoundTripsHostileStrings) {
  const std::string cases[] = {
      "",
      "plain",
      "quote\" backslash\\ slash/",
      "newline\n tab\t return\r backspace\b formfeed\f",
      std::string("embedded\0nul", 12),
      "\x01\x02\x1f\x7f",     // control chars incl. DEL (DEL passes raw)
      "utf-8 \xc3\xa9\xe2\x82\xac",  // é €
  };
  for (const std::string& s : cases) {
    std::string literal = JsonEscaped(s);
    std::string back;
    ASSERT_TRUE(JsonUnescape(literal, &back)) << literal;
    EXPECT_EQ(back, s);
    // No raw control characters may survive in the literal.
    for (char ch : literal) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
    }
  }
}

// Regression for the JobEventTrace export: event details carrying
// quotes, backslashes and control characters (injected-fault statuses,
// spill paths) must round-trip through ToJson.
TEST(ObsJson, JobEventTraceEscapesDetails) {
  const std::string hostile = "fault \"quoted\" C:\\spill\r\npath\x01";
  mr::JobEventTrace trace;
  mr::JobEvent event;
  event.type = mr::JobEventType::kAttemptFail;
  event.kind = mr::TaskKind::kMap;
  event.task = 0;
  event.attempt = 1;
  event.detail = hostile;
  trace.Append(event);
  std::string json = trace.ToJson();

  // Extract the detail literal and unescape it.
  const std::string key = "\"detail\": ";
  auto pos = json.find(key);
  ASSERT_NE(pos, std::string::npos) << json;
  pos += key.size();
  ASSERT_EQ(json[pos], '"');
  std::size_t end = pos + 1;
  while (end < json.size() && (json[end] != '"' || json[end - 1] == '\\')) {
    ++end;
  }
  ASSERT_LT(end, json.size());
  std::string back;
  ASSERT_TRUE(JsonUnescape(json.substr(pos, end - pos + 1), &back));
  EXPECT_EQ(back, hostile);
  // And nothing between the braces may be a raw control character.
  for (char ch : json) {
    if (ch == '\n') continue;  // the exporter's own pretty-printing
    EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
  }
}

TEST(ObsJson, WriterNestingAndEscaping) {
  JsonWriter w;
  w.BeginObject();
  w.Key("list");
  w.BeginArray();
  w.Int(-1);
  w.Uint(std::numeric_limits<uint64_t>::max());
  w.Double(0.5);
  w.Double(std::numeric_limits<double>::infinity());  // -> null
  w.Bool(true);
  w.String("a\"b");
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"list\":[-1,18446744073709551615,0.5,null,true,"
            "\"a\\\"b\"]}");
}

// ---- Trace collector ------------------------------------------------------

TEST(TraceJson, TracedJobEmitsSpansPerNode) {
  constexpr std::size_t kNodes = 2;
  mr::Cluster cluster({kNodes, 2, 0});
  TraceCollector tracer({kNodes});
  mr::JobSpec spec = WordCountSpec();
  spec.options.observer = &tracer;
  tracer.BeginJob("traced");
  ASSERT_TRUE(RunJob(spec, &cluster).ok());
  EXPECT_GT(tracer.size(), 0u);

  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // spans
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);   // metadata
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"node-0\""), std::string::npos);
  EXPECT_NE(json.find("\"node-1\""), std::string::npos);
  // 4 map tasks on 2 nodes: both node processes must carry spans.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

TEST(TraceJson, MultiJobTimelineRebasesMonotonically) {
  mr::JobEventTrace first, second;
  auto phase = [](mr::JobEventType type, const char* name, double t,
                  double d) {
    mr::JobEvent e;
    e.type = type;
    e.detail = name;
    e.time_seconds = t;
    e.duration_seconds = d;
    return e;
  };
  first.Append(phase(mr::JobEventType::kPhaseStart, "map", 0.0, 0.0));
  first.Append(phase(mr::JobEventType::kPhaseFinish, "map", 1.0, 1.0));
  second.Append(phase(mr::JobEventType::kPhaseStart, "map", 0.0, 0.0));
  second.Append(phase(mr::JobEventType::kPhaseFinish, "map", 0.5, 0.5));

  TraceCollector tracer({1});
  tracer.AddJobTrace(first, "job-a");
  tracer.AddJobTrace(second, "job-b");
  std::string json = tracer.ToChromeJson();
  // Both jobs appear, and the second job's map phase starts at or after
  // the first job's end (1.0 s = 1e6 us).
  EXPECT_NE(json.find("\"job-a\""), std::string::npos);
  EXPECT_NE(json.find("\"job-b\""), std::string::npos);
  auto first_end = json.find("\"job-b\"");
  auto ts_pos = json.find("\"ts\":", first_end);
  ASSERT_NE(ts_pos, std::string::npos);
  EXPECT_GE(std::stod(json.substr(ts_pos + 5)), 1e6);
}

// ---- QueryStats through the index layer -----------------------------------

std::vector<BinaryCode> SmallCodes() {
  std::vector<BinaryCode> codes;
  for (uint64_t v : {0x0ull, 0x1ull, 0x3ull, 0x7ull, 0xffull, 0xf0f0ull,
                     0x1234ull, 0xffffull}) {
    BinaryCode c(32);
    for (std::size_t b = 0; b < 32; ++b) c.SetBit(b, (v >> b) & 1);
    codes.push_back(c);
  }
  return codes;
}

TEST(QueryStats, LinearScanCountsEveryRow) {
  LinearScanIndex index;
  auto codes = SmallCodes();
  ASSERT_TRUE(index.Build(codes).ok());
  QueryStats stats;
  auto got = index.Search(codes[0], 1, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(stats.candidates_generated, codes.size());
  EXPECT_EQ(stats.exact_distance_computations, codes.size());
  EXPECT_EQ(stats.kernel_batch_calls, 1u);
  EXPECT_EQ(stats.results, got->size());
  EXPECT_GT(stats.results, 0u);
}

TEST(QueryStats, IndexFamiliesFillStats) {
  auto codes = SmallCodes();
  QueryStats null_stats;

  MultiHashTableIndex mh(4);
  ASSERT_TRUE(mh.Build(codes).ok());
  QueryStats mh_stats;
  ASSERT_TRUE(mh.Search(codes[1], 2, &mh_stats).ok());
  EXPECT_GT(mh_stats.signatures_enumerated, 0u);

  StaticHAIndex sha(StaticHAIndexOptions{8});
  ASSERT_TRUE(sha.Build(codes).ok());
  QueryStats sha_stats;
  ASSERT_TRUE(sha.Search(codes[1], 2, &sha_stats).ok());
  EXPECT_GT(sha_stats.signatures_enumerated, 0u);
  EXPECT_GT(sha_stats.kernel_batch_calls, 0u);

  DynamicHAIndex dha;
  ASSERT_TRUE(dha.Build(codes).ok());
  QueryStats dha_stats;
  auto got = dha.Search(codes[1], 2, &dha_stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(dha_stats.signatures_enumerated, 0u);
  EXPECT_EQ(dha_stats.results, got->size());

  // Null stats pointer: same results, no crash.
  auto no_stats = dha.Search(codes[1], 2, nullptr);
  ASSERT_TRUE(no_stats.ok());
  EXPECT_EQ(*no_stats, *got);
  (void)null_stats;
}

TEST(QueryStats, KnnRecordsRadiusExpansions) {
  LinearScanIndex index;
  auto codes = SmallCodes();
  ASSERT_TRUE(index.Build(codes).ok());
  QueryStats stats;
  auto got = index.Knn(codes[0], 3, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 3u);
  EXPECT_EQ(stats.results, 3u);
}

TEST(QueryStats, HistogramsRecordPerQuerySamples) {
  MetricsRegistry reg;
  QueryStatsHistograms hists = QueryStatsHistograms::Register(&reg);
  QueryStats a, b;
  a.candidates_generated = 10;
  a.results = 2;
  b.candidates_generated = 100;
  b.results = 0;
  hists.Observe(&reg, a);
  hists.Observe(&reg, b);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.histograms.at("query.candidates").count, 2u);
  EXPECT_EQ(snap.histograms.at("query.candidates").sum, 110u);
  EXPECT_EQ(snap.histograms.at("query.results").max, 2u);
  // Null registry: Register and Observe are safe no-ops.
  QueryStatsHistograms none = QueryStatsHistograms::Register(nullptr);
  none.Observe(nullptr, a);
}

TEST(QueryStats, AccumulateAndJson) {
  QueryStats a, b;
  a.candidates_generated = 3;
  a.kernel_batch_calls = 1;
  b.candidates_generated = 4;
  b.radius_expansions = 2;
  a += b;
  EXPECT_EQ(a.candidates_generated, 7u);
  EXPECT_EQ(a.radius_expansions, 2u);
  EXPECT_NE(a.ToJson().find("\"candidates_generated\":7"),
            std::string::npos);
}

}  // namespace
}  // namespace hamming::obs

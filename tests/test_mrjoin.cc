// End-to-end tests of the MapReduce join plans: correctness against the
// centralized ground truth and the Section 5.4 shuffle-cost ordering.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/generators.h"
#include "dataset/sampling.h"
#include "hashing/spectral_hashing.h"
#include "knn/exact_knn.h"
#include "mrjoin/mrha.h"
#include "mrjoin/pgbj.h"
#include "mrjoin/pmh.h"

namespace hamming::mrjoin {
namespace {

class MrJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_data_ = GenerateDataset(DatasetKind::kNusWide, 300,
                              {.num_clusters = 16, .seed = 1});
    s_data_ = GenerateDataset(DatasetKind::kNusWide, 400,
                              {.num_clusters = 16, .seed = 1});
    cluster_ = std::make_unique<mr::Cluster>(
        mr::ClusterOptions{4, 2, 4});
  }

  // Ground truth: hash with the same trained function a plan uses is not
  // observable from outside, so truth is computed per plan by re-running
  // the hash pipeline deterministically (same seed => same model).
  std::vector<JoinPair> CentralizedTruth(std::size_t code_bits, std::size_t h,
                                         double sample_rate, uint64_t seed) {
    // Reproduce the MRHA preprocessing exactly.
    Rng rng(seed);
    std::size_t r_n = std::max<std::size_t>(
        2, static_cast<std::size_t>(sample_rate * r_data_.rows()));
    std::size_t s_n = std::max<std::size_t>(
        2, static_cast<std::size_t>(sample_rate * s_data_.rows()));
    auto r_ids = ReservoirSampleIndices(r_data_.rows(), r_n, &rng);
    auto s_ids = ReservoirSampleIndices(s_data_.rows(), s_n, &rng);
    FloatMatrix sample(r_ids.size() + s_ids.size(), r_data_.cols());
    for (std::size_t i = 0; i < r_ids.size(); ++i) {
      auto src = r_data_.Row(r_ids[i]);
      std::copy(src.begin(), src.end(), sample.MutableRow(i).begin());
    }
    for (std::size_t i = 0; i < s_ids.size(); ++i) {
      auto src = s_data_.Row(s_ids[i]);
      std::copy(src.begin(), src.end(),
                sample.MutableRow(r_ids.size() + i).begin());
    }
    SpectralHashingOptions opts;
    opts.code_bits = code_bits;
    auto hash = SpectralHashing::Train(sample, opts).ValueOrDie();
    auto r_codes = hash->HashAll(r_data_);
    auto s_codes = hash->HashAll(s_data_);
    auto pairs = NestedLoopsJoin(r_codes, s_codes, h);
    NormalizePairs(&pairs);
    return pairs;
  }

  FloatMatrix r_data_;
  FloatMatrix s_data_;
  std::unique_ptr<mr::Cluster> cluster_;
};

TEST_F(MrJoinTest, MrhaOptionAMatchesCentralizedJoin) {
  MrhaOptions opts;
  opts.num_partitions = 4;
  opts.h = 3;
  opts.option = MrhaOption::kA;
  auto result = RunMrhaJoin(r_data_, s_data_, opts, cluster_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  auto pairs = result->pairs;
  NormalizePairs(&pairs);
  auto truth = CentralizedTruth(opts.code_bits, opts.h, opts.sample_rate,
                                opts.seed);
  EXPECT_EQ(pairs, truth);
  EXPECT_GT(result->shuffle_bytes, 0);
  EXPECT_GT(result->broadcast_bytes, 0);
}

TEST_F(MrJoinTest, MrhaOptionBMatchesCentralizedJoin) {
  MrhaOptions opts;
  opts.num_partitions = 4;
  opts.h = 3;
  opts.option = MrhaOption::kB;
  auto result = RunMrhaJoin(r_data_, s_data_, opts, cluster_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  auto pairs = result->pairs;
  NormalizePairs(&pairs);
  auto truth = CentralizedTruth(opts.code_bits, opts.h, opts.sample_rate,
                                opts.seed);
  EXPECT_EQ(pairs, truth);
}

TEST_F(MrJoinTest, MrhaOptionBBroadcastsLessThanOptionA) {
  // Section 5.3: the leafless index of Option B is smaller to ship.
  MrhaOptions a_opts;
  a_opts.num_partitions = 4;
  a_opts.option = MrhaOption::kA;
  MrhaOptions b_opts = a_opts;
  b_opts.option = MrhaOption::kB;
  mr::Cluster cluster_a({4, 2, 4});
  mr::Cluster cluster_b({4, 2, 4});
  auto a = RunMrhaJoin(r_data_, s_data_, a_opts, &cluster_a).ValueOrDie();
  auto b = RunMrhaJoin(r_data_, s_data_, b_opts, &cluster_b).ValueOrDie();
  EXPECT_LT(b.broadcast_bytes, a.broadcast_bytes);
}

TEST_F(MrJoinTest, MrhaPhaseTimesAreMeasured) {
  MrhaOptions opts;
  opts.num_partitions = 4;
  auto result = RunMrhaJoin(r_data_, s_data_, opts, cluster_.get());
  ASSERT_TRUE(result.ok());
  const auto& t = result->phase_seconds;
  EXPECT_GE(t.sampling, 0.0);
  EXPECT_GT(t.learn_hash, 0.0);
  EXPECT_GT(t.index_build, 0.0);
  EXPECT_GT(t.join, 0.0);
}

TEST_F(MrJoinTest, MrhaRejectsEmptyOrMismatchedInputs) {
  MrhaOptions opts;
  EXPECT_FALSE(
      RunMrhaJoin(FloatMatrix(), s_data_, opts, cluster_.get()).ok());
  FloatMatrix wrong(10, 3);
  EXPECT_FALSE(RunMrhaJoin(wrong, s_data_, opts, cluster_.get()).ok());
}

TEST_F(MrJoinTest, PretrainedHashSkipsLearningPhase) {
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  std::shared_ptr<const SpectralHashing> hash(
      SpectralHashing::Train(r_data_, hopts).ValueOrDie().release());
  MrhaOptions opts;
  opts.num_partitions = 4;
  opts.pretrained = hash;
  auto result = RunMrhaJoin(r_data_, s_data_, opts, cluster_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->phase_seconds.learn_hash, 0.0);
  // Same hash centrally reproduces the pair set.
  auto truth = NestedLoopsJoin(hash->HashAll(r_data_),
                               hash->HashAll(s_data_), opts.h);
  NormalizePairs(&truth);
  auto pairs = result->pairs;
  NormalizePairs(&pairs);
  EXPECT_EQ(pairs, truth);
}

TEST_F(MrJoinTest, PmhMatchesItsOwnCentralizedTruth) {
  PmhOptions opts;
  opts.num_partitions = 4;
  opts.h = 3;
  auto result = RunPmhJoin(r_data_, s_data_, opts, cluster_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  // PMH trains on an R-only sample; rebuild the same model for truth.
  Rng rng(opts.seed);
  std::size_t n = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.sample_rate * r_data_.rows()));
  auto ids = ReservoirSampleIndices(r_data_.rows(), n, &rng);
  auto sample = r_data_.GatherRows(ids);
  SpectralHashingOptions hopts;
  hopts.code_bits = opts.code_bits;
  auto hash = SpectralHashing::Train(sample, hopts).ValueOrDie();
  auto truth = NestedLoopsJoin(hash->HashAll(r_data_),
                               hash->HashAll(s_data_), opts.h);
  NormalizePairs(&truth);
  auto pairs = result->pairs;
  NormalizePairs(&pairs);
  EXPECT_EQ(pairs, truth);
}

TEST_F(MrJoinTest, PgbjProducesExactKnnResults) {
  PgbjOptions opts;
  opts.num_partitions = 4;
  opts.k = 5;
  opts.theta_slack = 3.0;
  auto result = RunPgbjJoin(r_data_, s_data_, opts, cluster_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), r_data_.rows());
  // Verify exactness on a handful of rows.
  double recall = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& row = result->rows[i];
    auto exact = ExactKnn(s_data_, r_data_.Row(row.r), opts.k);
    std::vector<std::size_t> got(row.neighbors.begin(), row.neighbors.end());
    recall += RecallAtK(exact, got);
  }
  recall /= 20.0;
  EXPECT_GT(recall, 0.95) << "PGBJ with generous slack should be ~exact";
}

TEST_F(MrJoinTest, ShuffleCostOrderingMatchesFigure7) {
  // The paper's headline distribution result: PGBJ's replicated vector
  // shuffle dominates PMH's broadcast multi-table index, which dominates
  // MRHA's compact HA-Index broadcast. At tiny scales the (shared) hash
  // model dominates everything, so this check uses a larger input.
  FloatMatrix r_big = GenerateDataset(DatasetKind::kNusWide, 2000,
                                      {.num_clusters = 16, .seed = 2});
  FloatMatrix s_big = GenerateDataset(DatasetKind::kNusWide, 2000,
                                      {.num_clusters = 16, .seed = 3});
  mr::Cluster c1({4, 2, 4}), c2({4, 2, 4}), c3({4, 2, 4});
  MrhaOptions mrha_opts;
  mrha_opts.num_partitions = 4;
  PmhOptions pmh_opts;
  pmh_opts.num_partitions = 4;
  PgbjOptions pgbj_opts;
  pgbj_opts.num_partitions = 4;
  pgbj_opts.k = 5;

  auto mrha = RunMrhaJoin(r_big, s_big, mrha_opts, &c1).ValueOrDie();
  auto pmh = RunPmhJoin(r_big, s_big, pmh_opts, &c2).ValueOrDie();
  auto pgbj = RunPgbjJoin(r_big, s_big, pgbj_opts, &c3).ValueOrDie();

  int64_t mrha_total = mrha.shuffle_bytes + mrha.broadcast_bytes;
  int64_t pmh_total = pmh.shuffle_bytes + pmh.broadcast_bytes;
  int64_t pgbj_total = pgbj.shuffle_bytes + pgbj.broadcast_bytes;
  EXPECT_GT(pgbj_total, pmh_total);
  EXPECT_GT(pmh_total, mrha_total);
}

}  // namespace
}  // namespace hamming::mrjoin

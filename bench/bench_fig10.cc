// Reproduces Figure 10: effect of the preprocessing sample size on (a)
// the per-phase Hamming-join time and (b) the precision/recall of the
// approximate kNN-join against the exact in-space kNN-join. The paper's
// observations: more sampling improves partition balance (and hence
// build/join time) while hash learning dominates preprocessing; precision
// and recall improve moderately with sample size, and recall stays low
// (binary codes are a lossy proxy for the metric space).
#include <cstdio>

#include <set>

#include "bench_common.h"
#include "knn/exact_knn.h"
#include "mrjoin/mrha.h"

namespace hamming::bench {
namespace {

using namespace hamming::mrjoin;  // NOLINT(build/namespaces)

void Run(DatasetKind kind, std::size_t n, std::size_t knn_k,
         BenchReport* report) {
  GeneratorOptions gopts;
  auto data = GenerateDataset(kind, n, gopts);

  // Exact kNN-join ground truth (quadratic; sized accordingly).
  auto exact = ExactKnnJoin(data, data, knn_k);
  std::set<std::pair<TupleId, TupleId>> truth;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    for (const auto& nb : exact[i]) {
      truth.emplace(static_cast<TupleId>(i), static_cast<TupleId>(nb.id));
    }
  }

  std::printf("\n(%s) n=%zu, h=3, k=%zu — phases (s) and join quality vs "
              "sampling percentage\n", DatasetKindName(kind), n, knn_k);
  std::printf("%-8s %10s %10s %10s %10s %10s %11s %8s\n", "sample%",
              "sampling", "learnhash", "pivots", "build", "join",
              "precision", "recall");
  std::printf("%s\n", Separator());

  for (double pct : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    mr::Cluster cluster({16, 4, 0});
    MrhaOptions opts;
    opts.num_partitions = 16;
    opts.sample_rate = pct;
    opts.h = 3;
    auto result = RunMrhaJoin(data, data, opts, &cluster);
    if (!result.ok()) {
      std::printf("%-8.2f failed: %s\n", pct,
                  result.status().ToString().c_str());
      continue;
    }
    // Join quality: the Hamming-join pairs as an approximation of the
    // exact kNN-join pair set.
    std::size_t hit = 0;
    std::set<std::pair<TupleId, TupleId>> produced;
    for (const auto& p : result->pairs) produced.emplace(p.r, p.s);
    for (const auto& p : produced) {
      if (truth.count(p)) ++hit;
    }
    double precision =
        produced.empty() ? 0.0
                         : static_cast<double>(hit) /
                               static_cast<double>(produced.size());
    double recall = truth.empty() ? 0.0
                                  : static_cast<double>(hit) /
                                        static_cast<double>(truth.size());
    const auto& t = result->phase_seconds;
    std::printf("%-8.2f %10.3f %10.3f %10.3f %10.3f %10.3f %11.3f %8.3f\n",
                pct, t.sampling, t.learn_hash, t.pivot_selection,
                t.index_build, t.join, precision, recall);
    if (report != nullptr) {
      report->AddRow()
          .Str("dataset", DatasetKindName(kind))
          .Num("sample_rate", pct)
          .Num("sampling_seconds", t.sampling)
          .Num("learn_hash_seconds", t.learn_hash)
          .Num("pivot_selection_seconds", t.pivot_selection)
          .Num("index_build_seconds", t.index_build)
          .Num("join_seconds", t.join)
          .Num("precision", precision)
          .Num("recall", recall);
    }
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Figure 10: effect of data sampling on Hamming-join "
              "phases and quality (scale %.2f) ===\n", args.scale);
  hamming::bench::BenchReport report("fig10", args.scale);
  hamming::bench::Run(hamming::DatasetKind::kNusWide, args.Scaled(2000),
                      /*knn_k=*/50, &report);
  report.Write();
  return 0;
}

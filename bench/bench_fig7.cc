// Reproduces Figure 7: MapReduce shuffle cost (log scale in the paper)
// vs data size (x5..x25 of the base) for PGBJ, PMH-10, MRHA-Index-A and
// MRHA-Index-B on the three datasets. Expected shape: PGBJ's replicated
// d-dimensional shuffle is 1-2 orders of magnitude above the hash-based
// plans; MRHA's index broadcast undercuts PMH's replicated-table
// broadcast; Option B ships less than Option A.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "dataset/scale.h"
#include "mrjoin/mrha.h"
#include "mrjoin/pgbj.h"
#include "mrjoin/pmh.h"
#include "observability/trace.h"

namespace hamming::bench {
namespace {

using namespace hamming::mrjoin;  // NOLINT(build/namespaces)

struct ShuffleRow {
  std::size_t scale_factor;
  double pgbj_mb;
  double pmh_mb;
  double mrha_a_mb;
  double mrha_b_mb;
};

double Mb(int64_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

void RunDataset(DatasetKind kind, std::size_t base_n,
                const std::vector<std::size_t>& factors, std::size_t knn_k,
                BenchReport* report, obs::MetricsRegistry* metrics,
                obs::TraceCollector* tracer) {
  GeneratorOptions gopts;
  auto base = GenerateDataset(kind, base_n, gopts);
  // The hash is learned once per dataset (the paper re-learns it only
  // when enough new data arrives) and shared by every plan/scale point,
  // so the sweep measures join work, not repeated Jacobi decompositions.
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  std::shared_ptr<const SpectralHashing> hash(
      SpectralHashing::Train(base, hopts).ValueOrDie().release());

  std::printf("\n(%s)  base n=%zu, self-join workload, h=3, k=%zu\n",
              DatasetKindName(kind), base_n, knn_k);
  std::printf("%-8s %12s %12s %14s %14s\n", "size(x)", "PGBJ(MB)",
              "PMH-10(MB)", "MRHA-A(MB)", "MRHA-B(MB)");
  std::printf("%s\n", Separator());

  // One MRJoinOptions base configures every plan: partitions, threshold
  // h, seed and mr::ExecutionOptions are set once and sliced into each
  // plan's derived options struct. PGBJ keeps its constructor's lower
  // sample_rate default, so only the partition count is copied there.
  // Every plan run shares one metrics registry (per-query work + the
  // runtime's per-reducer load histograms accumulate across the sweep)
  // and one trace collector, so each plan's jobs land on one timeline
  // labelled "<dataset>/x<f>/<plan>".
  MRJoinOptions shared;
  shared.num_partitions = 16;
  shared.exec.metrics = metrics;
  shared.exec.observer = tracer;

  auto begin_job = [&](std::size_t f, const char* plan) {
    if (tracer != nullptr) {
      tracer->BeginJob(std::string(DatasetKindName(kind)) + "/x" +
                       std::to_string(f) + "/" + plan);
    }
  };

  for (std::size_t f : factors) {
    FloatMatrix data = ScaleDataset(base, f);
    ShuffleRow row{f, 0, 0, 0, 0};

    {
      begin_job(f, "pgbj");
      mr::Cluster cluster({16, 4, 0});
      PgbjOptions opts;
      opts.exec = shared.exec;
      opts.num_partitions = shared.num_partitions;
      opts.k = knn_k;
      auto r = RunPgbjJoin(data, data, opts, &cluster);
      if (r.ok()) row.pgbj_mb = Mb(r->shuffle_bytes + r->broadcast_bytes);
    }
    {
      begin_job(f, "pmh");
      mr::Cluster cluster({16, 4, 0});
      PmhOptions opts;
      static_cast<MRJoinOptions&>(opts) = shared;
      opts.num_tables = 10;
      opts.pretrained = hash;
      auto r = RunPmhJoin(data, data, opts, &cluster);
      if (r.ok()) row.pmh_mb = Mb(r->shuffle_bytes + r->broadcast_bytes);
    }
    {
      begin_job(f, "mrha-a");
      mr::Cluster cluster({16, 4, 0});
      MrhaOptions opts;
      static_cast<MRJoinOptions&>(opts) = shared;
      opts.option = MrhaOption::kA;
      opts.pretrained = hash;
      auto r = RunMrhaJoin(data, data, opts, &cluster);
      if (r.ok()) row.mrha_a_mb = Mb(r->shuffle_bytes + r->broadcast_bytes);
    }
    {
      begin_job(f, "mrha-b");
      mr::Cluster cluster({16, 4, 0});
      MrhaOptions opts;
      static_cast<MRJoinOptions&>(opts) = shared;
      opts.option = MrhaOption::kB;
      opts.pretrained = hash;
      auto r = RunMrhaJoin(data, data, opts, &cluster);
      if (r.ok()) row.mrha_b_mb = Mb(r->shuffle_bytes + r->broadcast_bytes);
    }
    std::printf("%-8zu %12.3f %12.3f %14.3f %14.3f\n", row.scale_factor,
                row.pgbj_mb, row.pmh_mb, row.mrha_a_mb, row.mrha_b_mb);
    if (report != nullptr) {
      report->AddRow()
          .Str("dataset", DatasetKindName(kind))
          .Num("scale_factor", static_cast<double>(row.scale_factor))
          .Num("pgbj_mb", row.pgbj_mb)
          .Num("pmh_mb", row.pmh_mb)
          .Num("mrha_a_mb", row.mrha_a_mb)
          .Num("mrha_b_mb", row.mrha_b_mb);
    }
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Figure 7: shuffle cost of Hamming-join / kNN-join plans "
              "(scale %.2f) ===\n", args.scale);
  std::vector<std::size_t> factors{5, 10, 15, 20, 25};
  // Observability artifacts: metrics snapshot (per-query work histograms
  // + per-reducer skew) into BENCH_fig7.json, per-node span timeline
  // into BENCH_fig7_trace.json (load it in ui.perfetto.dev).
  hamming::obs::MetricsRegistry metrics;
  hamming::obs::TraceCollector tracer({/*num_nodes=*/16});
  hamming::bench::BenchReport report("fig7", args.scale);
  hamming::bench::RunDataset(hamming::DatasetKind::kNusWide,
                             args.Scaled(300), factors, /*knn_k=*/10,
                             &report, &metrics, &tracer);
  hamming::bench::RunDataset(hamming::DatasetKind::kFlickr,
                             args.Scaled(200), factors, /*knn_k=*/10,
                             &report, &metrics, &tracer);
  hamming::bench::RunDataset(hamming::DatasetKind::kDbpedia,
                             args.Scaled(300), factors, /*knn_k=*/10,
                             &report, &metrics, &tracer);
  report.Write(&metrics);
  if (tracer.WriteChromeJson("BENCH_fig7_trace.json")) {
    std::printf("wrote BENCH_fig7_trace.json (%zu spans)\n", tracer.size());
  }
  return 0;
}

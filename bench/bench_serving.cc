// Serving-layer QPS/latency study: batched vs unbatched query engines
// over the same shared index, closed- and open-loop.
//
// Closed loop (fixed concurrency, clients submit back-to-back) measures
// the throughput ceiling at a batch-friendly operating point: many
// concurrent clients over a modest index, where coalescing in-flight
// queries into one multi-query kernel call amortizes both the engine's
// per-request overhead (lock, wake, promise) and the per-query streaming
// of the stored codes. The headline acceptance number — batched >= 2x
// unbatched QPS — comes from this section.
//
// Open loop (scheduled arrivals at an offered QPS, latency measured from
// the *scheduled* arrival so queueing cannot hide behind dispatcher lag)
// sweeps a ladder of offered rates and reports, per engine config, the
// max sustainable QPS: the highest offered rate the engine absorbed with
// >= 95% of requests completed and achieved throughput within 90% of
// offered. Past that point an open-loop system shows its overload
// honestly: rejections and runaway p999.
//
// Churn mode: the same engine serving a ConcurrentHAIndex while worker
// threads mix inserts/deletes (applied directly to the index, which
// serializes them) with queries at configurable ratios — the
// reads-during-writes operating point of the epoch/snapshot layer.
// Ratios/threads via --churn-insert= --churn-delete= --churn-threads=
// --churn-ops=; rows land in the "churn" section with mutation rate and
// epoch-motion columns next to the query QPS/latency.
//
// Telemetry study: the batched closed-loop run repeated with the full
// live-telemetry stack (trace sampler at the default 1-in-64, query log,
// windowed time series) against an identical run with it off — the
// overhead A/B behind the "<= 3% at default sampling" acceptance bound.
// The telemetry stack then stays live through churn mode, and the run
// leaves three artifacts next to the JSON report: <out>_trace.json
// (Perfetto timeline with per-request spans), <out>_timeseries.jsonl
// (windowed rates/percentiles), <out>_querylog.jsonl (sampled
// exemplars) — the inputs of tools/telemetry_report.
//
// Output: human-readable tables + BENCH_serving.json with p50/p99/p999
// per row, a "max_sustainable" section, a "telemetry" A/B section, and
// "slow_query" exemplar rows. --smoke shrinks everything to a CI-sized
// run (scripts/check.sh validates the JSON artifact).
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "index/concurrent_ha_index.h"
#include "index/linear_scan.h"
#include "observability/query_log.h"
#include "observability/request_trace.h"
#include "observability/time_series.h"
#include "observability/trace.h"
#include "serving/load_gen.h"
#include "serving/query_engine.h"

namespace hamming {
namespace {

using bench::BenchReport;
using serving::ChurnOptions;
using serving::ChurnReport;
using serving::LoadReport;
using serving::QueryEngine;
using serving::QueryEngineOptions;
using serving::RunChurn;
using serving::RunClosedLoop;
using serving::RunOpenLoop;
using serving::WorkloadOptions;

std::vector<BinaryCode> MakeCodes(std::size_t n, std::size_t bits) {
  Rng rng(42);
  std::vector<BinaryCode> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BinaryCode code(bits);
    for (std::size_t b = 0; b < bits; ++b) {
      code.SetBit(b, rng.Bernoulli(0.5));
    }
    out.push_back(code);
  }
  return out;
}

struct EngineConfig {
  const char* name;
  std::size_t max_batch;
  std::chrono::microseconds linger;
};

void AddLatencyFields(BenchReport::Row& row, const LoadReport& r) {
  row.Num("completed", static_cast<double>(r.completed))
      .Num("rejected", static_cast<double>(r.rejected))
      .Num("expired", static_cast<double>(r.expired))
      .Num("qps", r.achieved_qps)
      .Num("p50_us", r.latency.p50_us)
      .Num("p99_us", r.latency.p99_us)
      .Num("p999_us", r.latency.p999_us)
      .Num("max_us", r.latency.max_us);
}

}  // namespace
}  // namespace hamming

int main(int argc, char** argv) {
  using namespace hamming;
  bool smoke = false;
  std::string out_path;
  double churn_insert = 0.2, churn_delete = 0.1;
  std::size_t churn_threads = 4, churn_ops = 0;  // 0 = pick by scale
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--churn-insert=", 15) == 0) {
      churn_insert = std::atof(argv[i] + 15);
    }
    if (std::strncmp(argv[i], "--churn-delete=", 15) == 0) {
      churn_delete = std::atof(argv[i] + 15);
    }
    if (std::strncmp(argv[i], "--churn-threads=", 16) == 0) {
      churn_threads = static_cast<std::size_t>(std::atol(argv[i] + 16));
    }
    if (std::strncmp(argv[i], "--churn-ops=", 12) == 0) {
      churn_ops = static_cast<std::size_t>(std::atol(argv[i] + 12));
    }
  }
  auto args = bench::BenchArgs::Parse(argc, argv);

  // Batch-friendly operating point: a 64-bit store big enough to spill
  // out of L2, so a single-query scan is memory-bound streaming while the
  // SIMD popcount compute is much cheaper than the loads. Coalescing B
  // in-flight queries into one MultiWithinDistance call streams the store
  // once instead of B times, which is where the batched engine earns its
  // throughput multiple. High client concurrency keeps a backlog queued
  // so batches actually form.
  const std::size_t n = smoke ? 32768 : args.Scaled(std::size_t{1} << 20);
  const std::size_t bits = 64;
  const std::size_t clients = smoke ? 32 : 64;
  const std::size_t per_client = smoke ? 40 : 100;
  auto codes = MakeCodes(n, bits);
  LinearScanIndex index;
  if (!index.Build(codes).ok()) return 1;

  // h = 9 on 64-bit codes keeps the scan selective (virtually no matches
  // on random codes) while steering ChooseLayout to the horizontal
  // lanes (h*8 > bits): the layout whose multi-query kernel the batcher
  // coalesces into. A smaller radius would route every request to the
  // per-query vertical scan and batching would have nothing to amortize.
  WorkloadOptions workload;
  workload.h = 9;

  // No linger for the batched engine: under closed-loop backlog batches
  // form naturally from queued requests, and added linger would inflate
  // closed-loop latency (QPS = clients / latency) without growing batches.
  const EngineConfig configs[] = {
      {"unbatched", 1, std::chrono::microseconds(0)},
      {"batched", 64, std::chrono::microseconds(0)},
  };

  obs::MetricsRegistry metrics;
  BenchReport report("serving", args.scale);

  std::printf("Closed loop: %zu clients x %zu queries, n=%zu codes, h=%zu\n",
              clients, per_client, n, workload.h);
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "config", "qps", "p50_us",
              "p99_us", "p999_us", "batch_avg");
  std::printf("%s\n", bench::Separator());
  double closed_qps[2] = {0.0, 0.0};
  for (std::size_t ci = 0; ci < 2; ++ci) {
    const EngineConfig& cfg = configs[ci];
    QueryEngineOptions opts;
    opts.num_workers = 2;
    opts.queue_capacity = 8192;
    opts.max_batch = cfg.max_batch;
    opts.batch_linger = cfg.linger;
    opts.metrics = ci == 1 ? &metrics : nullptr;  // serving.* for batched
    QueryEngine engine(&index, opts);
    if (!engine.Start().ok()) return 1;
    LoadReport r = RunClosedLoop(&engine, codes, workload, clients,
                                 per_client);
    engine.Shutdown();
    auto counters = engine.counters();
    const double batch_avg =
        counters.batches > 0
            ? static_cast<double>(counters.batched_queries) /
                  static_cast<double>(counters.batches)
            : 0.0;
    closed_qps[ci] = r.achieved_qps;
    std::printf("%-10s %10.0f %10.1f %10.1f %10.1f %10.2f\n", cfg.name,
                r.achieved_qps, r.latency.p50_us, r.latency.p99_us,
                r.latency.p999_us, batch_avg);
    auto& row = report.AddRow();
    row.Str("section", "closed_loop").Str("config", cfg.name);
    AddLatencyFields(row, r);
    row.Num("batch_avg", batch_avg);
  }
  if (closed_qps[1] > 0.0 && closed_qps[0] > 0.0) {
    std::printf("batched/unbatched QPS: %.2fx\n",
                closed_qps[1] / closed_qps[0]);
    report.AddRow()
        .Str("section", "summary")
        .Str("config", "closed_loop_speedup")
        .Num("batched_over_unbatched", closed_qps[1] / closed_qps[0]);
  }

  // Open-loop ladder: offered rates stepping up from half of each
  // config's own closed-loop ceiling; sustainable = >=95% completed and
  // achieved >= 90% of offered.
  std::printf("\nOpen loop ladder (%s)\n", smoke ? "smoke" : "full");
  std::printf("%-10s %12s %10s %10s %10s %10s\n", "config", "offered_qps",
              "qps", "p50_us", "p99_us", "p999_us");
  std::printf("%s\n", bench::Separator());
  const auto step_ms = std::chrono::milliseconds(smoke ? 150 : 500);
  for (std::size_t ci = 0; ci < 2; ++ci) {
    const EngineConfig& cfg = configs[ci];
    double base = closed_qps[ci] > 0 ? closed_qps[ci] : 1000.0;
    double max_sustainable = 0.0;
    for (double frac : {0.5, 0.75, 0.9, 1.1}) {
      const double offered = base * frac;
      QueryEngineOptions opts;
      opts.num_workers = 2;
      opts.queue_capacity = 8192;
      opts.max_batch = cfg.max_batch;
      opts.batch_linger = cfg.linger;
      QueryEngine engine(&index, opts);
      if (!engine.Start().ok()) return 1;
      LoadReport r = RunOpenLoop(&engine, codes, workload, offered, step_ms);
      engine.Shutdown();
      const bool sustained =
          r.attempted > 0 &&
          static_cast<double>(r.completed) >=
              0.95 * static_cast<double>(r.attempted) &&
          r.achieved_qps >= 0.9 * offered;
      if (sustained && offered > max_sustainable) max_sustainable = offered;
      std::printf("%-10s %12.0f %10.0f %10.1f %10.1f %10.1f%s\n", cfg.name,
                  offered, r.achieved_qps, r.latency.p50_us, r.latency.p99_us,
                  r.latency.p999_us, sustained ? "" : "  (overload)");
      auto& row = report.AddRow();
      row.Str("section", "open_loop")
          .Str("config", cfg.name)
          .Num("offered_qps", offered);
      AddLatencyFields(row, r);
      row.Num("sustained", sustained ? 1.0 : 0.0);
    }
    std::printf("%-10s max sustainable: %.0f qps\n", cfg.name,
                max_sustainable);
    report.AddRow()
        .Str("section", "max_sustainable")
        .Str("config", cfg.name)
        .Num("max_sustainable_qps", max_sustainable);
  }

  // Telemetry A/B: the batched closed-loop point, once with the whole
  // live-telemetry stack off and once with it on at default sampling.
  // Back-to-back runs on the same index isolate the telemetry delta
  // from run-to-run drift better than reusing the earlier closed-loop
  // number would.
  obs::TraceSamplerOptions sampler_opts;  // default 1-in-64 head sampling
  sampler_opts.slow_threshold = std::chrono::milliseconds(smoke ? 5 : 25);
  obs::TraceSampler sampler(sampler_opts);
  obs::TraceCollector trace;
  obs::QueryLog query_log;
  std::string artifact_prefix;
  obs::TimeSeriesOptions ts_opts;
  ts_opts.interval = std::chrono::milliseconds(smoke ? 25 : 250);
  if (!out_path.empty()) {
    artifact_prefix = out_path;
    const auto dot = artifact_prefix.rfind(".json");
    if (dot != std::string::npos) artifact_prefix.resize(dot);
    ts_opts.export_path = artifact_prefix + "_timeseries.jsonl";
  }
  obs::TimeSeriesCollector time_series(&metrics, ts_opts);
  if (Status st = time_series.Start(); !st.ok()) {
    std::fprintf(stderr, "time-series exporter failed to start: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  std::printf("\nTelemetry overhead (closed loop, batched, default "
              "1-in-%u sampling)\n", sampler.options().sample_every);
  std::printf("%-14s %10s %10s %10s %10s\n", "config", "qps", "p50_us",
              "p99_us", "p999_us");
  std::printf("%s\n", bench::Separator());
  double telemetry_qps[2] = {0.0, 0.0};
  for (int telemetry_on = 0; telemetry_on <= 1; ++telemetry_on) {
    QueryEngineOptions opts;
    opts.num_workers = 2;
    opts.queue_capacity = 8192;
    opts.max_batch = 64;
    opts.metrics = &metrics;  // both runs: isolate the *telemetry* cost
    if (telemetry_on != 0) {
      opts.sampler = &sampler;
      opts.trace = &trace;
      opts.query_log = &query_log;
    }
    QueryEngine engine(&index, opts);
    if (!engine.Start().ok()) return 1;
    LoadReport r = RunClosedLoop(&engine, codes, workload, clients,
                                 per_client);
    engine.Shutdown();
    telemetry_qps[telemetry_on] = r.achieved_qps;
    const char* name = telemetry_on != 0 ? "telemetry_on" : "telemetry_off";
    std::printf("%-14s %10.0f %10.1f %10.1f %10.1f\n", name, r.achieved_qps,
                r.latency.p50_us, r.latency.p99_us, r.latency.p999_us);
    auto& row = report.AddRow();
    row.Str("section", "telemetry").Str("config", name);
    AddLatencyFields(row, r);
  }
  if (telemetry_qps[0] > 0.0) {
    const double overhead_pct =
        (telemetry_qps[0] - telemetry_qps[1]) / telemetry_qps[0] * 100.0;
    std::printf("telemetry overhead: %.2f%%\n", overhead_pct);
    report.AddRow()
        .Str("section", "summary")
        .Str("config", "telemetry_overhead")
        .Num("overhead_pct", overhead_pct);
  }

  // Churn mode: queries race a live insert/delete stream over the
  // epoch/snapshot index. Mutations bypass the engine (the index
  // serializes its own writers); queries go through it like any client.
  // The telemetry stack stays attached, so the artifacts cover the
  // reads-during-writes phase too.
  {
    const std::size_t churn_n =
        smoke ? 8192 : args.Scaled(std::size_t{1} << 16);
    if (churn_ops == 0) churn_ops = smoke ? 400 : args.Scaled(4000);
    auto churn_codes = MakeCodes(churn_n, bits);
    ConcurrentHAIndexOptions iopts;
    iopts.metrics = &metrics;  // index.epoch_* land in the JSON snapshot
    ConcurrentHAIndex cha(iopts);
    if (!cha.Build(churn_codes).ok()) return 1;

    QueryEngineOptions eopts;
    eopts.num_workers = 2;
    eopts.queue_capacity = 8192;
    eopts.max_batch = 64;
    eopts.metrics = &metrics;
    eopts.sampler = &sampler;
    eopts.trace = &trace;
    eopts.query_log = &query_log;
    QueryEngine engine(&cha, eopts);
    if (!engine.Start().ok()) return 1;

    ChurnOptions copts;
    copts.insert_fraction = churn_insert;
    copts.delete_fraction = churn_delete;
    copts.threads = churn_threads;
    copts.ops_per_thread = churn_ops;
    copts.workload = workload;
    ChurnReport r = RunChurn(&engine, &cha, churn_codes, copts);
    engine.Shutdown();

    std::printf("\nChurn: %zu threads x %zu ops (insert %.0f%% / delete "
                "%.0f%% / query %.0f%%), n=%zu codes\n",
                copts.threads, copts.ops_per_thread,
                100 * copts.insert_fraction, 100 * copts.delete_fraction,
                100 * (1 - copts.insert_fraction - copts.delete_fraction),
                churn_n);
    std::printf("%-10s %12s %10s %10s %10s %12s %8s\n", "config", "mut/s",
                "qps", "p50_us", "p99_us", "p999_us", "epochs");
    std::printf("%s\n", bench::Separator());
    std::printf("%-10s %12.0f %10.0f %10.1f %10.1f %12.1f %8llu\n", "churn",
                r.mutations_per_second, r.query_qps, r.latency.p50_us,
                r.latency.p99_us, r.latency.p999_us,
                static_cast<unsigned long long>(r.epochs_published));
    report.AddRow()
        .Str("section", "churn")
        .Str("config", "batched")
        .Num("threads", static_cast<double>(copts.threads))
        .Num("insert_fraction", copts.insert_fraction)
        .Num("delete_fraction", copts.delete_fraction)
        .Num("inserts", static_cast<double>(r.inserts))
        .Num("deletes", static_cast<double>(r.deletes))
        .Num("mutations_per_sec", r.mutations_per_second)
        .Num("epochs_published", static_cast<double>(r.epochs_published))
        .Num("rebuilds", static_cast<double>(r.rebuilds))
        .Num("completed", static_cast<double>(r.query_completed))
        .Num("rejected", static_cast<double>(r.query_rejected))
        .Num("expired", static_cast<double>(r.query_expired))
        .Num("qps", r.query_qps)
        .Num("p50_us", r.latency.p50_us)
        .Num("p99_us", r.latency.p99_us)
        .Num("p999_us", r.latency.p999_us)
        .Num("max_us", r.latency.max_us);
  }

  // Wind down the telemetry stack: one final window, then the drain in
  // Stop() flushes the JSONL. The slowest recorded queries (tail set
  // first, reservoir as fallback so the section is never empty) become
  // exemplar rows with their latency decomposition.
  time_series.CloseWindowNow();
  time_series.Stop();
  std::vector<obs::QueryLogEntry> exemplars = query_log.SlowSnapshot();
  {
    std::vector<obs::QueryLogEntry> reservoir = query_log.ReservoirSnapshot();
    std::sort(reservoir.begin(), reservoir.end(),
              [](const obs::QueryLogEntry& a, const obs::QueryLogEntry& b) {
                return a.e2e_us > b.e2e_us;
              });
    exemplars.insert(exemplars.end(), reservoir.begin(), reservoir.end());
  }
  std::printf("\nSlowest recorded queries (query log)\n");
  std::printf("%10s %6s %10s %10s %10s %6s\n", "trace_id", "kind", "e2e_us",
              "queue_us", "svc_us", "batch");
  std::printf("%s\n", bench::Separator());
  const std::size_t top = std::min<std::size_t>(5, exemplars.size());
  for (std::size_t i = 0; i < top; ++i) {
    const obs::QueryLogEntry& e = exemplars[i];
    std::printf("%10llu %6c %10.1f %10.1f %10.1f %6llu\n",
                static_cast<unsigned long long>(e.trace_id), e.kind, e.e2e_us,
                e.queue_us, e.service_us,
                static_cast<unsigned long long>(e.batch_size));
    report.AddRow()
        .Str("section", "slow_query")
        .Str("kind", e.kind == 'k' ? "knn" : "range")
        .Num("trace_id", static_cast<double>(e.trace_id))
        .Num("slow", e.slow ? 1.0 : 0.0)
        .Num("e2e_us", e.e2e_us)
        .Num("queue_us", e.queue_us)
        .Num("service_us", e.service_us)
        .Num("batch_size", static_cast<double>(e.batch_size));
  }
  report.AddRow()
      .Str("section", "telemetry_totals")
      .Num("queries_logged", static_cast<double>(query_log.recorded()))
      .Num("slow_seen", static_cast<double>(query_log.slow_seen()))
      .Num("windows_closed", static_cast<double>(time_series.windows_closed()))
      .Num("trace_events", static_cast<double>(trace.size()));
  if (!artifact_prefix.empty()) {
    if (!trace.WriteChromeJson(artifact_prefix + "_trace.json")) return 1;
    if (!query_log.ExportJsonl(artifact_prefix + "_querylog.jsonl")) return 1;
    std::printf("\nartifacts: %s_trace.json, %s_timeseries.jsonl, "
                "%s_querylog.jsonl\n", artifact_prefix.c_str(),
                artifact_prefix.c_str(), artifact_prefix.c_str());
  }

  return report.Write(&metrics, out_path) ? 0 : 1;
}

// Reproduces Table 5: approximate kNN-select — query time and index
// build time for E2LSH, LSB-Tree(25), SHA-Index(32/64), DHA-Index(32/64).
// The paper's observations: the HA-Index approaches beat LSH by two
// orders of magnitude; LSB-Tree queries are decent but its index build is
// enormous; HA-Index build/query grow smoothly with code length.
#include <cstdio>

#include "bench_common.h"
#include "index/dynamic_ha_index.h"
#include "index/static_ha_index.h"
#include "knn/e2lsh.h"
#include "knn/exact_knn.h"
#include "knn/hamming_knn.h"
#include "knn/lsb_tree.h"

namespace hamming::bench {
namespace {

constexpr std::size_t kK = 50;

struct Row {
  std::string name;
  double query_ms;
  double build_s;
  double recall;
};

template <typename IndexT>
Row MeasureHaKnn(const std::string& name, const PreparedDataset& ds32,
                 const PreparedDataset& ds64, std::size_t bits,
                 IndexT make_index,
                 const std::vector<std::vector<Neighbor>>& truth) {
  const PreparedDataset& ds = bits == 32 ? ds32 : ds64;
  obs::Stopwatch watch;
  auto index = make_index();
  // Build on generated data cannot fail; timing is the point here.
  (void)index->Build(ds.codes);
  double build_s = watch.ElapsedSeconds() + ds.hash_train_seconds;

  HammingKnnSearcher searcher(index.get(), ds.hash.get(), &ds.data);
  watch.Restart();
  double recall = 0.0;
  for (std::size_t qi = 0; qi < ds.queries.rows(); ++qi) {
    auto nn = searcher.Search(ds.queries.Row(qi), kK).ValueOrDie();
    std::vector<std::size_t> ids;
    for (const auto& x : nn) ids.push_back(x.id);
    recall += RecallAtK(truth[qi], ids);
  }
  double query_ms =
      watch.ElapsedMillis() / static_cast<double>(ds.queries.rows());
  recall /= static_cast<double>(ds.queries.rows());
  return {name, query_ms, build_s, recall};
}

void RunDataset(DatasetKind kind, std::size_t n, std::size_t nq,
                BenchReport* report) {
  PreparedDataset ds32 = Prepare(kind, n, nq, /*code_bits=*/32);
  PreparedDataset ds64 = Prepare(kind, n, nq, /*code_bits=*/64);
  std::printf("\n(%s)  n=%zu, k=%zu, %zu queries\n", DatasetKindName(kind),
              n, kK, nq);
  std::printf("%-16s %12s %14s %10s\n", "algorithm", "query(ms)",
              "index build(s)", "recall@k");
  std::printf("%s\n", Separator());

  // Exact ground truth for recall reporting.
  std::vector<std::vector<Neighbor>> truth(nq);
  for (std::size_t qi = 0; qi < nq; ++qi) {
    truth[qi] = ExactKnn(ds32.data, ds32.queries.Row(qi), kK);
  }

  std::vector<Row> rows;

  {  // E2LSH (20 tables, as in the paper).
    obs::Stopwatch watch;
    E2LshOptions opts;
    opts.num_tables = 20;
    auto lsh = E2Lsh::Build(ds32.data, opts).ValueOrDie();
    double build_s = watch.ElapsedSeconds();
    watch.Restart();
    double recall = 0.0;
    for (std::size_t qi = 0; qi < nq; ++qi) {
      auto nn = lsh.Search(ds32.queries.Row(qi), kK);
      std::vector<std::size_t> ids;
      for (const auto& x : nn) ids.push_back(x.id);
      recall += RecallAtK(truth[qi], ids);
    }
    rows.push_back({"LSH", watch.ElapsedMillis() / nq, build_s,
                    recall / static_cast<double>(nq)});
  }
  {  // LSB-Tree forest with 25 trees.
    obs::Stopwatch watch;
    LsbTreeOptions opts;
    opts.num_trees = 25;
    auto forest = LsbForest::Build(ds32.data, opts).ValueOrDie();
    double build_s = watch.ElapsedSeconds();
    watch.Restart();
    double recall = 0.0;
    for (std::size_t qi = 0; qi < nq; ++qi) {
      auto nn = forest.Search(ds32.queries.Row(qi), kK);
      std::vector<std::size_t> ids;
      for (const auto& x : nn) ids.push_back(x.id);
      recall += RecallAtK(truth[qi], ids);
    }
    rows.push_back({"LSB-Tree(25)", watch.ElapsedMillis() / nq, build_s,
                    recall / static_cast<double>(nq)});
  }
  for (std::size_t bits : {32u, 64u}) {
    rows.push_back(MeasureHaKnn(
        "SHA-Index(" + std::to_string(bits) + ")", ds32, ds64, bits,
        [] { return std::make_unique<StaticHAIndex>(StaticHAIndexOptions{8}); },
        truth));
    rows.push_back(MeasureHaKnn(
        "DHA-Index(" + std::to_string(bits) + ")", ds32, ds64, bits,
        [] { return std::make_unique<DynamicHAIndex>(); }, truth));
  }

  for (const auto& r : rows) {
    std::printf("%-16s %12.3f %14.3f %10.3f\n", r.name.c_str(), r.query_ms,
                r.build_s, r.recall);
    if (report != nullptr) {
      report->AddRow()
          .Str("dataset", DatasetKindName(kind))
          .Str("algorithm", r.name)
          .Num("query_ms", r.query_ms)
          .Num("build_seconds", r.build_s)
          .Num("recall_at_k", r.recall);
    }
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Table 5: approximate kNN-select comparison "
              "(scale %.2f) ===\n", args.scale);
  const std::size_t nq = 50;
  hamming::bench::BenchReport report("table5", args.scale);
  hamming::bench::RunDataset(hamming::DatasetKind::kNusWide,
                             args.Scaled(20000), nq, &report);
  hamming::bench::RunDataset(hamming::DatasetKind::kFlickr,
                             args.Scaled(10000), nq, &report);
  hamming::bench::RunDataset(hamming::DatasetKind::kDbpedia,
                             args.Scaled(20000), nq, &report);
  report.Write();
  return 0;
}

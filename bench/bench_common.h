// Shared plumbing for the per-table / per-figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// Section 6 at a laptop-friendly default scale; pass --scale=<f> to grow
// the workloads toward paper scale (absolute numbers will differ from
// the authors' 2007-era Xeon cluster; the *shapes* are the reproduction
// target — see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "index/hamming_index.h"

namespace hamming::bench {

/// \brief Parses --scale=<double> and --quick from argv (default 1.0).
struct BenchArgs {
  double scale = 1.0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        args.scale = std::atof(argv[i] + 8);
        if (args.scale <= 0) args.scale = 1.0;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.scale = 0.25;
      }
    }
    return args;
  }

  std::size_t Scaled(std::size_t base) const {
    auto n = static_cast<std::size_t>(static_cast<double>(base) * scale);
    return n < 16 ? 16 : n;
  }
};

/// \brief A dataset prepared for Hamming experiments: raw features, a
/// trained Spectral Hashing model, and the binary codes of every tuple
/// and query.
struct PreparedDataset {
  DatasetKind kind;
  FloatMatrix data;
  FloatMatrix queries;
  std::unique_ptr<SpectralHashing> hash;
  std::vector<BinaryCode> codes;
  std::vector<BinaryCode> query_codes;
  double hash_train_seconds = 0.0;
};

/// \brief Generates `n` tuples + `nq` queries of `kind`, trains Spectral
/// Hashing on a sample, and hashes everything to `code_bits`-bit codes.
inline PreparedDataset Prepare(DatasetKind kind, std::size_t n,
                               std::size_t nq, std::size_t code_bits,
                               uint64_t seed = 42) {
  PreparedDataset out;
  out.kind = kind;
  GeneratorOptions gopts;
  gopts.seed = seed;
  // Richer visual vocabulary + more within-theme variation than the
  // generator defaults: real photo collections do not collapse onto a
  // handful of identical codes, and hash-bucket selectivity (which the
  // MH/HEngine baselines live on) depends on that dispersion.
  gopts.num_clusters = 256;
  gopts.cluster_spread = 0.35;
  out.data = GenerateDataset(kind, n, gopts);
  out.queries = GenerateQueries(kind, nq, gopts);

  // Train on a capped sample: covariance + Jacobi on d x d is the fixed
  // cost; the sample size only affects estimate quality.
  std::size_t train_n = n < 2000 ? n : 2000;
  FloatMatrix sample(train_n, out.data.cols());
  for (std::size_t i = 0; i < train_n; ++i) {
    auto src = out.data.Row(i * (n / train_n));
    std::copy(src.begin(), src.end(), sample.MutableRow(i).begin());
  }
  SpectralHashingOptions hopts;
  hopts.code_bits = code_bits;
  Stopwatch watch;
  out.hash = SpectralHashing::Train(sample, hopts).ValueOrDie();
  out.hash_train_seconds = watch.ElapsedSeconds();
  out.codes = out.hash->HashAll(out.data);
  out.query_codes = out.hash->HashAll(out.queries);
  return out;
}

/// \brief Average per-query H-Search latency in milliseconds.
inline double MeasureQueryMillis(const HammingIndex& index,
                                 const std::vector<BinaryCode>& queries,
                                 std::size_t h) {
  Stopwatch watch;
  std::size_t sink = 0;
  for (const auto& q : queries) {
    auto got = index.Search(q, h);
    if (got.ok()) sink += got->size();
  }
  double ms = watch.ElapsedMillis() / static_cast<double>(queries.size());
  // Defeat dead-code elimination.
  if (sink == static_cast<std::size_t>(-1)) std::printf("impossible\n");
  return ms;
}

/// \brief Average delete-one + insert-one latency in milliseconds
/// (Table 4's "update time").
inline double MeasureUpdateMillis(HammingIndex* index,
                                  const std::vector<BinaryCode>& codes,
                                  std::size_t rounds = 50) {
  Stopwatch watch;
  for (std::size_t r = 0; r < rounds; ++r) {
    TupleId id = static_cast<TupleId>((r * 7919) % codes.size());
    (void)index->Delete(id, codes[id]);
    (void)index->Insert(id, codes[id]);
  }
  return watch.ElapsedMillis() / static_cast<double>(rounds);
}

inline const char* Separator() {
  return "------------------------------------------------------------"
         "--------------------";
}

}  // namespace hamming::bench

// Shared plumbing for the per-table / per-figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// Section 6 at a laptop-friendly default scale; pass --scale=<f> to grow
// the workloads toward paper scale (absolute numbers will differ from
// the authors' 2007-era Xeon cluster; the *shapes* are the reproduction
// target — see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "observability/stopwatch.h"
#include "dataset/generators.h"
#include "hashing/spectral_hashing.h"
#include "index/hamming_index.h"
#include "observability/json.h"
#include "observability/memtrack.h"
#include "observability/metrics.h"

namespace hamming::bench {

/// \brief Parses --scale=<double> and --quick from argv (default 1.0).
struct BenchArgs {
  double scale = 1.0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        args.scale = std::atof(argv[i] + 8);
        if (args.scale <= 0) args.scale = 1.0;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.scale = 0.25;
      }
    }
    return args;
  }

  std::size_t Scaled(std::size_t base) const {
    auto n = static_cast<std::size_t>(static_cast<double>(base) * scale);
    return n < 16 ? 16 : n;
  }
};

/// \brief A dataset prepared for Hamming experiments: raw features, a
/// trained Spectral Hashing model, and the binary codes of every tuple
/// and query.
struct PreparedDataset {
  DatasetKind kind;
  FloatMatrix data;
  FloatMatrix queries;
  std::unique_ptr<SpectralHashing> hash;
  std::vector<BinaryCode> codes;
  std::vector<BinaryCode> query_codes;
  double hash_train_seconds = 0.0;
};

/// \brief Generates `n` tuples + `nq` queries of `kind`, trains Spectral
/// Hashing on a sample, and hashes everything to `code_bits`-bit codes.
inline PreparedDataset Prepare(DatasetKind kind, std::size_t n,
                               std::size_t nq, std::size_t code_bits,
                               uint64_t seed = 42) {
  PreparedDataset out;
  out.kind = kind;
  GeneratorOptions gopts;
  gopts.seed = seed;
  // Richer visual vocabulary + more within-theme variation than the
  // generator defaults: real photo collections do not collapse onto a
  // handful of identical codes, and hash-bucket selectivity (which the
  // MH/HEngine baselines live on) depends on that dispersion.
  gopts.num_clusters = 256;
  gopts.cluster_spread = 0.35;
  out.data = GenerateDataset(kind, n, gopts);
  out.queries = GenerateQueries(kind, nq, gopts);

  // Train on a capped sample: covariance + Jacobi on d x d is the fixed
  // cost; the sample size only affects estimate quality.
  std::size_t train_n = n < 2000 ? n : 2000;
  FloatMatrix sample(train_n, out.data.cols());
  for (std::size_t i = 0; i < train_n; ++i) {
    auto src = out.data.Row(i * (n / train_n));
    std::copy(src.begin(), src.end(), sample.MutableRow(i).begin());
  }
  SpectralHashingOptions hopts;
  hopts.code_bits = code_bits;
  obs::Stopwatch watch;
  out.hash = SpectralHashing::Train(sample, hopts).ValueOrDie();
  out.hash_train_seconds = watch.ElapsedSeconds();
  out.codes = out.hash->HashAll(out.data);
  out.query_codes = out.hash->HashAll(out.queries);
  return out;
}

/// \brief Average per-query H-Search latency in milliseconds. When a
/// metrics registry is supplied, each query's work profile (candidates,
/// exact distances, ...) is recorded into the "query.*" histograms.
inline double MeasureQueryMillis(
    const HammingIndex& index, const std::vector<BinaryCode>& queries,
    std::size_t h, obs::MetricsRegistry* metrics = nullptr,
    const obs::QueryStatsHistograms& hists = {}) {
  obs::Stopwatch watch;
  std::size_t sink = 0;
  // One single-request batch per query: this measures *per-query*
  // latency (the batch-amortization study lives in bench_serving).
  QueryResponse resp;
  for (const auto& q : queries) {
    QueryRequest req = QueryRequest::Range(q, h);
    if (index.SearchBatch({&req, 1}, {&resp, 1}).ok() && resp.status.ok()) {
      sink += resp.ids.size();
    }
    if (metrics != nullptr) hists.Observe(metrics, resp.stats);
  }
  double ms = watch.ElapsedMillis() / static_cast<double>(queries.size());
  // Defeat dead-code elimination.
  if (sink == static_cast<std::size_t>(-1)) std::printf("impossible\n");
  return ms;
}

/// \brief Average delete-one + insert-one latency in milliseconds
/// (Table 4's "update time").
inline double MeasureUpdateMillis(HammingIndex* index,
                                  const std::vector<BinaryCode>& codes,
                                  std::size_t rounds = 50) {
  obs::Stopwatch watch;
  for (std::size_t r = 0; r < rounds; ++r) {
    TupleId id = static_cast<TupleId>((r * 7919) % codes.size());
    // Churn on ids known to exist; failure is impossible by construction.
    (void)index->Delete(id, codes[id]);
    (void)index->Insert(id, codes[id]);
  }
  return watch.ElapsedMillis() / static_cast<double>(rounds);
}

inline const char* Separator() {
  return "------------------------------------------------------------"
         "--------------------";
}

/// \brief Collects a bench binary's result rows and writes them — plus a
/// metrics snapshot, when a registry was attached to the runs — as a
/// machine-readable BENCH_<name>.json next to the human-readable tables.
///
/// Every row is an ordered list of (key, value) fields so the emitted
/// rows read exactly like the printed table; a "section" field carries
/// the dataset/configuration context that the printed tables put in
/// their headers.
class BenchReport {
 public:
  explicit BenchReport(std::string name, double scale = 1.0)
      : name_(std::move(name)), scale_(scale) {}

  class Row {
   public:
    Row& Str(std::string key, std::string value) {
      fields_.push_back(
          {std::move(key), std::move(value), 0.0, /*is_string=*/true});
      return *this;
    }
    Row& Num(std::string key, double value) {
      fields_.push_back({std::move(key), {}, value, /*is_string=*/false});
      return *this;
    }

   private:
    friend class BenchReport;
    struct Field {
      std::string key;
      std::string str;
      double num;
      bool is_string;
    };
    std::vector<Field> fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// \brief Writes BENCH_<name>.json (or `path`, if non-empty) into the
  /// working directory: {"bench", "scale", "rows", "metrics"?}. Records
  /// the process peak RSS into the registry first so memory shows up in
  /// the snapshot. Returns false (with a warning on stderr) on I/O error.
  bool Write(obs::MetricsRegistry* metrics = nullptr,
             const std::string& path = "") const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String(name_);
    w.Key("scale");
    w.Double(scale_);
    w.Key("rows");
    w.BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      for (const Row::Field& f : row.fields_) {
        w.Key(f.key);
        if (f.is_string) {
          w.String(f.str);
        } else {
          w.Double(f.num);
        }
      }
      w.EndObject();
    }
    w.EndArray();
    if (metrics != nullptr) {
      obs::RecordPeakRss(metrics);
      w.Key("metrics");
      w.Raw(metrics->Snapshot().ToJson());
    }
    w.EndObject();
    const std::string out_path =
        path.empty() ? "BENCH_" + name_ + ".json" : path;
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
      return false;
    }
    const std::string& body = w.str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return true;
  }

 private:
  std::string name_;
  double scale_;
  std::vector<Row> rows_;
};

}  // namespace hamming::bench

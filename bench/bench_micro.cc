// Google-benchmark microbenchmarks of the primitives the paper's cost
// model is built on: XOR+popcount distance, Gray rank, masked partial
// distance, and H-Search across index implementations.
#include <benchmark/benchmark.h>

#include "code/gray.h"
#include "code/masked_code.h"
#include "common/rng.h"
#include "index/dynamic_ha_index.h"
#include "index/hengine.h"
#include "index/linear_scan.h"
#include "index/multi_hash_table.h"
#include "index/radix_tree.h"
#include "index/static_ha_index.h"

namespace hamming {
namespace {

std::vector<BinaryCode> MakeCodes(std::size_t n, std::size_t bits,
                                  std::size_t clusters) {
  Rng rng(42);
  std::vector<BinaryCode> centers;
  for (std::size_t c = 0; c < clusters; ++c) {
    BinaryCode code(bits);
    for (std::size_t b = 0; b < bits; ++b) code.SetBit(b, rng.Bernoulli(0.5));
    centers.push_back(code);
  }
  std::vector<BinaryCode> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BinaryCode code = centers[i % clusters];
    for (int f = 0; f < 3; ++f) {
      code.FlipBit(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bits) - 1)));
    }
    out.push_back(code);
  }
  return out;
}

void BM_HammingDistance(benchmark::State& state) {
  auto codes = MakeCodes(2, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes[0].Distance(codes[1]));
  }
}
BENCHMARK(BM_HammingDistance)->Arg(32)->Arg(64)->Arg(128)->Arg(512);

void BM_WithinDistanceEarlyExit(benchmark::State& state) {
  auto codes = MakeCodes(2, 512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes[0].WithinDistance(codes[1], 3));
  }
}
BENCHMARK(BM_WithinDistanceEarlyExit);

void BM_GrayRank(benchmark::State& state) {
  auto codes = MakeCodes(1, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GrayRank(codes[0]));
  }
}
BENCHMARK(BM_GrayRank)->Arg(32)->Arg(512);

void BM_MaskedPartialDistance(benchmark::State& state) {
  auto codes = MakeCodes(2, 64, 1);
  MaskedCode pattern = MaskedCode::Agreement(codes[0], codes[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.PartialDistance(codes[0]));
  }
}
BENCHMARK(BM_MaskedPartialDistance);

template <typename MakeIndex>
void SearchBench(benchmark::State& state, MakeIndex make) {
  auto codes = MakeCodes(static_cast<std::size_t>(state.range(0)), 32, 32);
  auto index = make();
  if (!index->Build(codes).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(7);
  std::size_t qi = 0;
  for (auto _ : state) {
    auto got = index->Search(codes[qi % codes.size()], 3);
    benchmark::DoNotOptimize(got);
    qi += 97;
  }
}

void BM_SearchLinear(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<LinearScanIndex>(); });
}
void BM_SearchMh4(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<MultiHashTableIndex>(4); });
}
void BM_SearchHEngine(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<HEngineIndex>(4); });
}
void BM_SearchRadix(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<RadixTreeIndex>(); });
}
void BM_SearchSha(benchmark::State& state) {
  SearchBench(state,
              [] { return std::make_unique<StaticHAIndex>(); });
}
void BM_SearchDha(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<DynamicHAIndex>(); });
}
BENCHMARK(BM_SearchLinear)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchMh4)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchHEngine)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchRadix)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchSha)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchDha)->Arg(10000)->Arg(50000);

void BM_DhaBuild(benchmark::State& state) {
  auto codes = MakeCodes(static_cast<std::size_t>(state.range(0)), 32, 32);
  for (auto _ : state) {
    DynamicHAIndex index;
    benchmark::DoNotOptimize(index.Build(codes));
  }
}
BENCHMARK(BM_DhaBuild)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hamming

BENCHMARK_MAIN();

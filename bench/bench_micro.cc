// Google-benchmark microbenchmarks of the primitives the paper's cost
// model is built on: XOR+popcount distance, Gray rank, masked partial
// distance, batched kernel scans, and H-Search across index
// implementations.
//
// The custom main() additionally times the batched kernels against the
// scalar BinaryCode loop and a map-heavy MapReduce job under both
// counter modes (per-record contended vs per-task batched), and writes
// the results to BENCH_micro.json. Pass --json_only to skip the
// google-benchmark suite, --json_out=PATH to redirect the file.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "code/gray.h"
#include "code/masked_code.h"
#include "common/rng.h"
#include "observability/stopwatch.h"
#include "index/dynamic_ha_index.h"
#include "index/hengine.h"
#include "index/linear_scan.h"
#include "index/multi_hash_table.h"
#include "index/radix_tree.h"
#include "index/static_ha_index.h"
#include "kernels/code_store.h"
#include "kernels/hamming_kernels.h"
#include "kernels/vertical_code_store.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "observability/metrics.h"

namespace hamming {
namespace {

std::vector<BinaryCode> MakeCodes(std::size_t n, std::size_t bits,
                                  std::size_t clusters) {
  Rng rng(42);
  std::vector<BinaryCode> centers;
  for (std::size_t c = 0; c < clusters; ++c) {
    BinaryCode code(bits);
    for (std::size_t b = 0; b < bits; ++b) code.SetBit(b, rng.Bernoulli(0.5));
    centers.push_back(code);
  }
  std::vector<BinaryCode> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BinaryCode code = centers[i % clusters];
    for (int f = 0; f < 3; ++f) {
      code.FlipBit(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bits) - 1)));
    }
    out.push_back(code);
  }
  return out;
}

void BM_HammingDistance(benchmark::State& state) {
  auto codes = MakeCodes(2, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes[0].Distance(codes[1]));
  }
}
BENCHMARK(BM_HammingDistance)->Arg(32)->Arg(64)->Arg(128)->Arg(512);

void BM_WithinDistanceEarlyExit(benchmark::State& state) {
  auto codes = MakeCodes(2, 512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes[0].WithinDistance(codes[1], 3));
  }
}
BENCHMARK(BM_WithinDistanceEarlyExit);

void BM_GrayRank(benchmark::State& state) {
  auto codes = MakeCodes(1, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GrayRank(codes[0]));
  }
}
BENCHMARK(BM_GrayRank)->Arg(32)->Arg(512);

void BM_MaskedPartialDistance(benchmark::State& state) {
  auto codes = MakeCodes(2, 64, 1);
  MaskedCode pattern = MaskedCode::Agreement(codes[0], codes[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.PartialDistance(codes[0]));
  }
}
BENCHMARK(BM_MaskedPartialDistance);

// ---- Batched kernel benchmarks (ns/code = time / items) -----------------

void BM_KernelScalarScan(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto codes = MakeCodes(4096, bits, 16);
  auto query = MakeCodes(1, bits, 1)[0];
  std::vector<uint32_t> dists(codes.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < codes.size(); ++i) {
      dists[i] = static_cast<uint32_t>(codes[i].Distance(query));
    }
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codes.size()));
}
BENCHMARK(BM_KernelScalarScan)->Arg(64)->Arg(128)->Arg(225)->Arg(512);

void BM_KernelBatchDistance(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto codes = MakeCodes(4096, bits, 16);
  auto store = kernels::CodeStore::FromCodes(codes).ValueOrDie();
  auto query = MakeCodes(1, bits, 1)[0];
  std::vector<uint32_t> dists(store.size());
  for (auto _ : state) {
    kernels::BatchDistance(query, store, dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.size()));
}
BENCHMARK(BM_KernelBatchDistance)->Arg(64)->Arg(128)->Arg(225)->Arg(512);

void BM_KernelBatchKnn(benchmark::State& state) {
  auto codes = MakeCodes(65536, 64, 64);
  auto store = kernels::CodeStore::FromCodes(codes).ValueOrDie();
  auto query = MakeCodes(1, 64, 1)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::BatchKnn(query, store, 10));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.size()));
}
BENCHMARK(BM_KernelBatchKnn);

template <typename MakeIndex>
void SearchBench(benchmark::State& state, MakeIndex make) {
  auto codes = MakeCodes(static_cast<std::size_t>(state.range(0)), 32, 32);
  auto index = make();
  if (!index->Build(codes).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(7);
  std::size_t qi = 0;
  QueryResponse resp;
  for (auto _ : state) {
    QueryRequest req = QueryRequest::Range(codes[qi % codes.size()], 3);
    benchmark::DoNotOptimize(index->SearchBatch({&req, 1}, {&resp, 1}));
    benchmark::DoNotOptimize(resp.ids.data());
    qi += 97;
  }
}

void BM_SearchLinear(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<LinearScanIndex>(); });
}
void BM_SearchMh4(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<MultiHashTableIndex>(4); });
}
void BM_SearchHEngine(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<HEngineIndex>(4); });
}
void BM_SearchRadix(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<RadixTreeIndex>(); });
}
void BM_SearchSha(benchmark::State& state) {
  SearchBench(state,
              [] { return std::make_unique<StaticHAIndex>(); });
}
void BM_SearchDha(benchmark::State& state) {
  SearchBench(state, [] { return std::make_unique<DynamicHAIndex>(); });
}
BENCHMARK(BM_SearchLinear)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchMh4)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchHEngine)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchRadix)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchSha)->Arg(10000)->Arg(50000);
BENCHMARK(BM_SearchDha)->Arg(10000)->Arg(50000);

void BM_DhaBuild(benchmark::State& state) {
  auto codes = MakeCodes(static_cast<std::size_t>(state.range(0)), 32, 32);
  for (auto _ : state) {
    DynamicHAIndex index;
    benchmark::DoNotOptimize(index.Build(codes));
  }
}
BENCHMARK(BM_DhaBuild)->Arg(10000)->Unit(benchmark::kMillisecond);

// ---- BENCH_micro.json emitter -------------------------------------------

// Times `pass` (which processes `items` codes/records) repeatedly until
// ~0.15 s of wall clock, returning ns per item.
double TimeNsPerItem(const std::function<void()>& pass, std::size_t items) {
  obs::Stopwatch warm;
  pass();
  double once = warm.ElapsedSeconds();
  int reps = static_cast<int>(0.15 / std::max(once, 1e-6)) + 1;
  obs::Stopwatch watch;
  for (int r = 0; r < reps; ++r) pass();
  double secs = watch.ElapsedSeconds();
  return secs * 1e9 / (static_cast<double>(reps) * static_cast<double>(items));
}

struct KernelRow {
  std::size_t bits;
  std::size_t n;
  double scalar_ns_per_code;
  double batched_ns_per_code;
};

KernelRow MeasureKernel(std::size_t bits) {
  const std::size_t n = 65536;
  auto codes = MakeCodes(n, bits, 64);
  auto store = kernels::CodeStore::FromCodes(codes).ValueOrDie();
  auto query = MakeCodes(1, bits, 1)[0];
  std::vector<uint32_t> dists(n);
  KernelRow row{bits, n, 0, 0};
  row.scalar_ns_per_code = TimeNsPerItem(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          dists[i] = static_cast<uint32_t>(codes[i].Distance(query));
        }
        benchmark::DoNotOptimize(dists.data());
      },
      n);
  row.batched_ns_per_code = TimeNsPerItem(
      [&] {
        kernels::BatchDistance(query, store, dists.data());
        benchmark::DoNotOptimize(dists.data());
      },
      n);
  return row;
}

// Uniform random codes plus a handful of planted near-neighbors of the
// returned query. Uniform data is the honest workload for plane-pruning
// benchmarks: the clustered MakeCodes generator puts a third of the
// store within a few bits of any member, which (deliberately) defeats
// block pruning; real fingerprint collections behave like the uniform
// case at small r.
BinaryCode MakeUniformWithNeighbors(std::size_t n, std::size_t bits,
                                    std::vector<BinaryCode>* out) {
  Rng rng(1234);
  out->clear();
  out->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BinaryCode code(bits);
    for (std::size_t b = 0; b < bits; ++b) {
      code.SetBit(b, rng.Bernoulli(0.5));
    }
    out->push_back(code);
  }
  BinaryCode query(bits);
  for (std::size_t b = 0; b < bits; ++b) {
    query.SetBit(b, rng.Bernoulli(0.5));
  }
  // Plant ~128 neighbors within distance 2 so small-r scans return a
  // realistic nonzero result set instead of an empty one.
  for (std::size_t i = 0; i < std::min<std::size_t>(n, 128); ++i) {
    std::size_t slot = (i * 7919) % n;
    BinaryCode neighbor = query;
    neighbor.FlipBit(static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bits) - 1)));
    neighbor.FlipBit(static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bits) - 1)));
    (*out)[slot] = neighbor;
  }
  return query;
}

struct VerticalRow {
  std::size_t bits = 0;
  std::size_t n = 0;
  std::size_t r = 0;
  double horizontal_ns_per_code = 0;
  double vertical_ns_per_code = 0;
  double speedup = 0;
  double planes_scanned_frac = 0;  // planes read / (blocks * bits)
  double blocks_pruned_frac = 0;   // blocks pruned before the last plane
  std::size_t matches = 0;
};

// Horizontal vs vertical threshold scan over the same store. Both sides
// go through the public batch entry points, so the horizontal number is
// the active backend's word-stride kernel and the vertical number is
// the bit-plane kernel with per-block pruning.
VerticalRow MeasureVertical(std::size_t bits, std::size_t r, std::size_t n) {
  std::vector<BinaryCode> codes;
  const BinaryCode query = MakeUniformWithNeighbors(n, bits, &codes);
  auto store = kernels::CodeStore::FromCodes(codes).ValueOrDie();
  kernels::VerticalCodeStore vstore;
  store.TransposeInto(&vstore);

  VerticalRow row;
  row.bits = bits;
  row.n = n;
  row.r = r;
  std::vector<uint32_t> slots;
  row.horizontal_ns_per_code = TimeNsPerItem(
      [&] {
        slots.clear();
        kernels::BatchWithinDistance(query, store, r, &slots);
        benchmark::DoNotOptimize(slots.data());
      },
      n);
  kernels::VerticalScanStats stats;
  row.vertical_ns_per_code = TimeNsPerItem(
      [&] {
        slots.clear();
        kernels::BatchWithinDistance(query, vstore, r, &slots, &stats);
        benchmark::DoNotOptimize(slots.data());
      },
      n);
  row.matches = slots.size();
  row.speedup = row.horizontal_ns_per_code / row.vertical_ns_per_code;
  if (stats.blocks_scanned > 0) {
    const double denom =
        static_cast<double>(stats.blocks_scanned) * static_cast<double>(bits);
    row.planes_scanned_frac = static_cast<double>(stats.planes_scanned) / denom;
    row.blocks_pruned_frac = static_cast<double>(stats.blocks_pruned) /
                             static_cast<double>(stats.blocks_scanned);
  }
  return row;
}

struct MapJobRow {
  std::size_t records = 0;
  std::size_t shuffle_records = 0;
  double legacy_map_seconds = 0;
  double batched_map_seconds = 0;
  double metered_map_seconds = 0;  // batched counters + metrics registry
  double legacy_shuffle_seconds = 0;
  double batched_shuffle_seconds = 0;
  bool counters_identical = false;
};

MapJobRow MeasureMapJob() {
  // A map-heavy job: trivial identity mapper over many small records, so
  // per-record runner overhead (the counter accounting) dominates.
  const std::size_t kRecords = 200000;
  Rng rng(9);
  std::vector<mr::Record> records(kRecords);
  for (auto& rec : records) {
    rec.key.resize(8);
    for (auto& b : rec.key) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  mr::JobSpec spec;
  spec.name = "bench-map-heavy";
  spec.input_splits = mr::SplitEvenly(std::move(records), 16);
  spec.map_fn = [](const mr::Record& rec, mr::Emitter* emitter) {
    emitter->Emit(rec.key, rec.value);
    return Status::OK();
  };
  spec.options.num_reducers = 4;

  MapJobRow row;
  row.records = kRecords;
  row.shuffle_records = kRecords;
  mr::Counters legacy_counters, batched_counters;
  obs::MetricsRegistry metrics;
  // Alternate modes, keep each mode's best of three (first runs warm the
  // allocator and page cache). Mode 2 runs batched counters with a live
  // metrics registry attached — the measured cost of the observability
  // layer on the map-heavy hot path (compare against a
  // -DHAMMING_DISABLE_METRICS build for the compile-out baseline).
  enum { kLegacy = 0, kBatched = 1, kMetered = 2 };
  for (int round = 0; round < 3; ++round) {
    for (int mode : {kLegacy, kBatched, kMetered}) {
      mr::Cluster cluster;
      spec.options.legacy_contended_counters = (mode == kLegacy);
      spec.options.metrics = (mode == kMetered) ? &metrics : nullptr;
      auto result = mr::RunJob(spec, &cluster);
      if (!result.ok()) continue;
      double& map_best = mode == kLegacy    ? row.legacy_map_seconds
                         : mode == kBatched ? row.batched_map_seconds
                                            : row.metered_map_seconds;
      if (map_best == 0 || result->map_seconds < map_best) {
        map_best = result->map_seconds;
      }
      if (mode != kMetered) {
        double& shuffle_best = mode == kLegacy
                                   ? row.legacy_shuffle_seconds
                                   : row.batched_shuffle_seconds;
        if (shuffle_best == 0 || result->shuffle_seconds < shuffle_best) {
          shuffle_best = result->shuffle_seconds;
        }
        (mode == kLegacy ? legacy_counters : batched_counters) =
            result->counters;
      }
    }
  }
  row.counters_identical =
      legacy_counters.Snapshot() == batched_counters.Snapshot();
  return row;
}

int EmitJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"backend\": \"%s\",\n",
               kernels::BackendName(kernels::ActiveBackend()));
  // Which kernel tiers this binary compiled in and this CPU can run,
  // plus the layout policy in force — the context every number below
  // must be read against.
  std::fprintf(f,
               "  \"kernel_tiers\": {"
               "\"avx2_compiled\": %s, \"avx2_supported\": %s, "
               "\"avx512_compiled\": %s, \"avx512_supported\": %s, "
               "\"layout_policy\": \"%s\"},\n",
#if defined(HAMMING_HAVE_AVX2_TU)
               "true",
#else
               "false",
#endif
               kernels::Avx2Supported() ? "true" : "false",
#if defined(HAMMING_HAVE_AVX512_TU)
               "true",
#else
               "false",
#endif
               kernels::Avx512Supported() ? "true" : "false",
               kernels::LayoutPolicyName(kernels::ActiveLayoutPolicy()));
  std::fprintf(f, "  \"kernels\": [\n");
  const std::size_t kBits[] = {64, 128, 225, 512};
  for (std::size_t i = 0; i < 4; ++i) {
    KernelRow row = MeasureKernel(kBits[i]);
    double speedup = row.scalar_ns_per_code / row.batched_ns_per_code;
    std::fprintf(f,
                 "    {\"bits\": %zu, \"codes\": %zu, "
                 "\"scalar_ns_per_code\": %.3f, "
                 "\"batched_ns_per_code\": %.3f, "
                 "\"batched_codes_per_sec\": %.3e, "
                 "\"speedup\": %.2f}%s\n",
                 row.bits, row.n, row.scalar_ns_per_code,
                 row.batched_ns_per_code, 1e9 / row.batched_ns_per_code,
                 speedup, i + 1 < 4 ? "," : "");
    std::fprintf(stderr, "kernel %3zu-bit: scalar %.2f ns/code, batched "
                 "%.2f ns/code (%.2fx)\n",
                 row.bits, row.scalar_ns_per_code, row.batched_ns_per_code,
                 speedup);
  }
  std::fprintf(f, "  ],\n");
  // Vertical (bit-plane) vs horizontal threshold scans. The acceptance
  // grid covers the selective radii the layout heuristic targets; the
  // r-sweep at 128 bits charts the crossover where pruning stops paying.
  std::fprintf(f, "  \"vertical_kernels\": [\n");
  {
    const std::size_t kN = std::size_t{1} << 20;
    struct { std::size_t bits, r; } grid[] = {
        {64, 2}, {64, 8}, {128, 2}, {128, 8}, {256, 2}, {256, 8}};
    const std::size_t kGrid = sizeof(grid) / sizeof(grid[0]);
    for (std::size_t i = 0; i < kGrid; ++i) {
      VerticalRow row = MeasureVertical(grid[i].bits, grid[i].r, kN);
      std::fprintf(f,
                   "    {\"bits\": %zu, \"codes\": %zu, \"r\": %zu, "
                   "\"horizontal_ns_per_code\": %.4f, "
                   "\"vertical_ns_per_code\": %.4f, "
                   "\"speedup\": %.2f, "
                   "\"planes_scanned_frac\": %.4f, "
                   "\"blocks_pruned_frac\": %.4f, "
                   "\"matches\": %zu}%s\n",
                   row.bits, row.n, row.r, row.horizontal_ns_per_code,
                   row.vertical_ns_per_code, row.speedup,
                   row.planes_scanned_frac, row.blocks_pruned_frac,
                   row.matches, i + 1 < kGrid ? "," : "");
      std::fprintf(stderr,
                   "vertical %3zu-bit r=%-2zu: horizontal %.3f ns/code, "
                   "vertical %.3f ns/code (%.2fx), planes %.1f%%, pruned "
                   "%.1f%%\n",
                   row.bits, row.r, row.horizontal_ns_per_code,
                   row.vertical_ns_per_code, row.speedup,
                   row.planes_scanned_frac * 100, row.blocks_pruned_frac * 100);
    }
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"vertical_r_sweep\": [\n");
  {
    const std::size_t kN = std::size_t{1} << 18;
    const std::size_t kRadii[] = {2, 4, 8, 16, 32, 64};
    const std::size_t kCount = sizeof(kRadii) / sizeof(kRadii[0]);
    for (std::size_t i = 0; i < kCount; ++i) {
      VerticalRow row = MeasureVertical(128, kRadii[i], kN);
      std::fprintf(f,
                   "    {\"bits\": 128, \"codes\": %zu, \"r\": %zu, "
                   "\"horizontal_ns_per_code\": %.4f, "
                   "\"vertical_ns_per_code\": %.4f, "
                   "\"speedup\": %.2f, "
                   "\"planes_scanned_frac\": %.4f}%s\n",
                   row.n, row.r, row.horizontal_ns_per_code,
                   row.vertical_ns_per_code, row.speedup,
                   row.planes_scanned_frac, i + 1 < kCount ? "," : "");
      std::fprintf(stderr,
                   "r-sweep 128-bit r=%-2zu: %.2fx (planes %.1f%%)\n",
                   row.r, row.speedup, row.planes_scanned_frac * 100);
    }
  }
  std::fprintf(f, "  ],\n");
  MapJobRow job = MeasureMapJob();
  double map_speedup = job.legacy_map_seconds / job.batched_map_seconds;
  std::fprintf(
      f,
      "  \"map_job\": {\"records\": %zu, "
      "\"legacy_map_seconds\": %.4f, \"batched_map_seconds\": %.4f, "
      "\"legacy_map_records_per_sec\": %.3e, "
      "\"batched_map_records_per_sec\": %.3e, "
      "\"map_speedup\": %.2f, "
      "\"legacy_shuffle_records_per_sec\": %.3e, "
      "\"batched_shuffle_records_per_sec\": %.3e, "
      "\"counter_totals_identical\": %s},\n",
      job.records, job.legacy_map_seconds, job.batched_map_seconds,
      job.records / job.legacy_map_seconds,
      job.records / job.batched_map_seconds, map_speedup,
      job.shuffle_records / job.legacy_shuffle_seconds,
      job.shuffle_records / job.batched_shuffle_seconds,
      job.counters_identical ? "true" : "false");
  // Observability overhead on the same job: batched counters with a live
  // MetricsRegistry attached vs none. Compare metered_map_seconds across
  // a normal and a -DHAMMING_DISABLE_METRICS build for the compile-out
  // delta the acceptance bar (<3%) is about.
  const double metrics_overhead_pct =
      job.batched_map_seconds > 0
          ? (job.metered_map_seconds / job.batched_map_seconds - 1.0) * 100.0
          : 0.0;
  std::fprintf(f,
               "  \"metrics\": {\"compiled_in\": %s, "
               "\"metered_map_seconds\": %.4f, "
               "\"baseline_map_seconds\": %.4f, "
               "\"overhead_pct\": %.2f}\n",
               HAMMING_METRICS_ENABLED ? "true" : "false",
               job.metered_map_seconds, job.batched_map_seconds,
               metrics_overhead_pct);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr,
               "map-heavy job: legacy %.3fs, batched %.3fs (%.2fx), "
               "counters identical: %s\n",
               job.legacy_map_seconds, job.batched_map_seconds, map_speedup,
               job.counters_identical ? "yes" : "NO");
  std::fprintf(stderr,
               "metrics (compiled %s): metered %.3fs vs %.3fs baseline "
               "(%+.2f%%)\n-> %s\n",
               HAMMING_METRICS_ENABLED ? "in" : "out",
               job.metered_map_seconds, job.batched_map_seconds,
               metrics_overhead_pct, path.c_str());
  return 0;
}

}  // namespace
}  // namespace hamming

int main(int argc, char** argv) {
  std::string json_out = "BENCH_micro.json";
  bool json_only = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json_only") == 0) {
      json_only = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int rc = hamming::EmitJson(json_out);
  if (rc != 0 || json_only) return rc;
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

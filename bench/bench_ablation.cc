// Ablation benches for the design choices DESIGN.md calls out:
//   1. Gray order vs lexicographic vs unsorted H-Build (Proposition 2).
//   2. H-Build window size (structure + search cost trade-off).
//   3. Leafful vs leafless DHA memory (the Option A/B broadcast choice).
//   4. Static HA-Index segment width.
#include <cstdio>

#include "bench_common.h"
#include "index/dynamic_ha_index.h"
#include "index/static_ha_index.h"
#include "ops/operators.h"

namespace hamming::bench {
namespace {

void SortModeAblation(const PreparedDataset& ds, BenchReport* report) {
  std::printf("\n[1] H-Build sort order (n=%zu, h=3)\n", ds.codes.size());
  std::printf("%-16s %12s %12s %12s %12s\n", "order", "build(ms)",
              "query(ms)", "internal", "edges");
  std::printf("%s\n", Separator());
  struct ModeRow {
    const char* name;
    BuildSortMode mode;
  };
  for (const auto& m :
       {ModeRow{"gray", BuildSortMode::kGray},
        ModeRow{"lexicographic", BuildSortMode::kLexicographic},
        ModeRow{"unsorted", BuildSortMode::kNone}}) {
    DynamicHAIndexOptions opts;
    opts.sort_mode = m.mode;
    DynamicHAIndex index(opts);
    obs::Stopwatch watch;
    // Build on generated data cannot fail; timing is the point here.
    (void)index.Build(ds.codes);
    double build_ms = watch.ElapsedMillis();
    double query_ms = MeasureQueryMillis(index, ds.query_codes, 3);
    auto stats = index.Stats();
    std::printf("%-16s %12.2f %12.4f %12zu %12zu\n", m.name, build_ms,
                query_ms, stats.num_internal_nodes, stats.num_edges);
    report->AddRow()
        .Str("ablation", "sort_mode")
        .Str("order", m.name)
        .Num("build_ms", build_ms)
        .Num("query_ms", query_ms)
        .Num("internal_nodes", static_cast<double>(stats.num_internal_nodes))
        .Num("edges", static_cast<double>(stats.num_edges));
  }
}

void WindowAblation(const PreparedDataset& ds, BenchReport* report) {
  std::printf("\n[2] H-Build window size (n=%zu, h=3)\n", ds.codes.size());
  std::printf("%-8s %12s %12s %12s %12s\n", "window", "build(ms)",
              "query(ms)", "internal", "leaves");
  std::printf("%s\n", Separator());
  for (std::size_t w : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    DynamicHAIndexOptions opts;
    opts.window = w;
    DynamicHAIndex index(opts);
    obs::Stopwatch watch;
    // Build on generated data cannot fail; timing is the point here.
    (void)index.Build(ds.codes);
    double build_ms = watch.ElapsedMillis();
    double query_ms = MeasureQueryMillis(index, ds.query_codes, 3);
    auto stats = index.Stats();
    std::printf("%-8zu %12.2f %12.4f %12zu %12zu\n", w, build_ms, query_ms,
                stats.num_internal_nodes, stats.num_leaves);
    report->AddRow()
        .Str("ablation", "window")
        .Num("window", static_cast<double>(w))
        .Num("build_ms", build_ms)
        .Num("query_ms", query_ms)
        .Num("internal_nodes", static_cast<double>(stats.num_internal_nodes))
        .Num("leaves", static_cast<double>(stats.num_leaves));
  }
}

void LeafAblation(const PreparedDataset& ds, BenchReport* report) {
  std::printf("\n[3] leafful vs leafless DHA memory (n=%zu)\n",
              ds.codes.size());
  std::printf("%-10s %16s %16s %16s\n", "variant", "total", "internal",
              "leaf");
  std::printf("%s\n", Separator());
  for (bool leaves : {true, false}) {
    DynamicHAIndexOptions opts;
    opts.store_tuple_ids = leaves;
    DynamicHAIndex index(opts);
    // Build on generated data cannot fail; timing is the point here.
    (void)index.Build(ds.codes);
    auto mem = index.Memory();
    std::printf("%-10s %16s %16s %16s\n", leaves ? "leafful" : "leafless",
                obs::FormatBytes(mem.total()).c_str(),
                obs::FormatBytes(mem.internal_bytes).c_str(),
                obs::FormatBytes(mem.leaf_bytes).c_str());
    report->AddRow()
        .Str("ablation", "leaf_storage")
        .Str("variant", leaves ? "leafful" : "leafless")
        .Num("total_bytes", static_cast<double>(mem.total()))
        .Num("internal_bytes", static_cast<double>(mem.internal_bytes))
        .Num("leaf_bytes", static_cast<double>(mem.leaf_bytes));
  }
}

void SegmentAblation(const PreparedDataset& ds, BenchReport* report) {
  std::printf("\n[4] SHA-Index segment width (n=%zu, h=3)\n",
              ds.codes.size());
  std::printf("%-10s %12s %12s %14s\n", "seg bits", "build(ms)",
              "query(ms)", "shared nodes");
  std::printf("%s\n", Separator());
  for (std::size_t seg : {2u, 4u, 8u, 16u}) {
    StaticHAIndex index(StaticHAIndexOptions{seg});
    obs::Stopwatch watch;
    // Build on generated data cannot fail; timing is the point here.
    (void)index.Build(ds.codes);
    double build_ms = watch.ElapsedMillis();
    double query_ms = MeasureQueryMillis(index, ds.query_codes, 3);
    std::printf("%-10zu %12.2f %12.4f %14zu\n", seg, build_ms, query_ms,
                index.NodeCount());
    report->AddRow()
        .Str("ablation", "segment_width")
        .Num("segment_bits", static_cast<double>(seg))
        .Num("build_ms", build_ms)
        .Num("query_ms", query_ms)
        .Num("shared_nodes", static_cast<double>(index.NodeCount()));
  }
}

void JoinPlanAblation(const PreparedDataset& ds, BenchReport* report) {
  // Self-join over a prefix of the dataset with each physical plan.
  std::printf("\n[5] centralized join plan (self-join n=%zu, h=3)\n",
              std::min<std::size_t>(ds.codes.size(), 8000));
  std::printf("%-14s %14s %14s\n", "plan", "time(ms)", "pairs");
  std::printf("%s\n", Separator());
  std::vector<BinaryCode> subset(
      ds.codes.begin(),
      ds.codes.begin() + std::min<std::size_t>(ds.codes.size(), 8000));
  auto table = HammingTable::FromCodes(subset).ValueOrDie();
  struct PlanRow {
    const char* name;
    ops::JoinPlan plan;
  };
  for (const auto& p :
       {PlanRow{"nested-loops", ops::JoinPlan::kNestedLoops},
        PlanRow{"index-probe", ops::JoinPlan::kIndexProbe},
        PlanRow{"dual-tree", ops::JoinPlan::kDualTree}}) {
    ops::OperatorOptions opts;
    opts.plan = p.plan;
    obs::Stopwatch watch;
    auto pairs = ops::HammingJoin(table, table, 3, opts);
    double ms = watch.ElapsedMillis();
    std::printf("%-14s %14.1f %14zu\n", p.name, ms,
                pairs.ok() ? pairs->size() : 0);
    report->AddRow()
        .Str("ablation", "join_plan")
        .Str("plan", p.name)
        .Num("millis", ms)
        .Num("pairs", static_cast<double>(pairs.ok() ? pairs->size() : 0));
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Ablations: HA-Index design choices (scale %.2f) ===\n",
              args.scale);
  auto ds = hamming::bench::Prepare(hamming::DatasetKind::kNusWide,
                                    args.Scaled(20000), 100,
                                    /*code_bits=*/32);
  hamming::bench::BenchReport report("ablation", args.scale);
  hamming::bench::SortModeAblation(ds, &report);
  hamming::bench::WindowAblation(ds, &report);
  hamming::bench::LeafAblation(ds, &report);
  hamming::bench::SegmentAblation(ds, &report);
  hamming::bench::JoinPlanAblation(ds, &report);
  report.Write();
  return 0;
}

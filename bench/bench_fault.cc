// Failure-rate sweep over the MapReduce join plans: per-attempt failure
// probability p in {0, 0.05, 0.2} (plus injected stragglers and
// speculation), measuring wall-clock degradation and attempt-level churn
// while asserting the results stay byte-identical to the failure-free
// run — the substitution argument of DESIGN.md, measured.
//
// Also demonstrates the JobEventTrace JSON export on a small traced job
// (--trace prints the full event log).
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "mapreduce/job.h"
#include "mrjoin/mrha.h"
#include "mrjoin/pgbj.h"
#include "mrjoin/pmh.h"

namespace hamming::bench {
namespace {

using namespace hamming::mrjoin;  // NOLINT(build/namespaces)

// Accumulates attempt-level stats across every job a plan runs (OnEvent
// calls are serialized by each job's runner; a plan runs jobs one at a
// time, so plain counters suffice).
struct AttemptObserver : mr::JobObserver {
  mr::AttemptStats stats;
  void OnEvent(const mr::JobEvent& e) override {
    switch (e.type) {
      case mr::JobEventType::kAttemptStart: ++stats.started; break;
      case mr::JobEventType::kAttemptFinish: ++stats.finished; break;
      case mr::JobEventType::kAttemptFail: ++stats.failed; break;
      case mr::JobEventType::kAttemptKill: ++stats.killed; break;
      case mr::JobEventType::kAttemptSpeculate: ++stats.speculated; break;
      default: break;
    }
  }
};

mr::ExecutionOptions FaultRegime(double p, mr::JobObserver* observer,
                                 bool speculate) {
  mr::ExecutionOptions exec;
  exec.observer = observer;
  if (p <= 0.0) return exec;  // clean run: single attempts, no monitor
  exec.max_attempts = 10;
  exec.speculation.enabled = speculate;
  exec.speculation.slow_attempt_seconds = 0.05;
  mr::RandomFaultOptions f;
  f.failure_probability = p;
  f.straggler_probability = p / 2;
  f.straggler_delay_seconds = 0.1;
  f.seed = 0xfa9d;
  exec.fault = std::make_shared<mr::RandomFaultInjector>(f);
  return exec;
}

struct SweepPoint {
  double seconds = 0.0;
  std::size_t results = 0;
  mr::AttemptStats stats;
};

template <typename RunFn>
void SweepPlan(const char* plan, const RunFn& run, BenchReport* report) {
  const double probabilities[] = {0.0, 0.05, 0.2};
  SweepPoint base;
  std::printf("%-10s %6s %9s %11s %9s %8s %8s %8s %8s\n", plan, "p",
              "wall(s)", "no-spec(s)", "results", "started", "failed",
              "killed", "spec");
  std::printf("%s\n", Separator());
  for (double p : probabilities) {
    AttemptObserver observer;
    obs::Stopwatch watch;
    SweepPoint point;
    point.results = run(FaultRegime(p, &observer, /*speculate=*/true));
    point.seconds = watch.ElapsedSeconds();
    point.stats = observer.stats;
    // Same faults without backup attempts: what speculation buys.
    double no_spec_seconds = 0.0;
    if (p > 0.0) {
      AttemptObserver nospec_observer;
      obs::Stopwatch nospec_watch;
      std::size_t nospec_results =
          run(FaultRegime(p, &nospec_observer, /*speculate=*/false));
      no_spec_seconds = nospec_watch.ElapsedSeconds();
      if (nospec_results != point.results) {
        std::printf("!! speculation changed the result set\n");
      }
    }
    if (p == 0.0) base = point;
    const bool identical = point.results == base.results;
    std::printf("%-10s %6.2f %9.3f %11.3f %9zu %8lld %8lld %8lld %8lld%s\n",
                "", p, point.seconds, no_spec_seconds, point.results,
                static_cast<long long>(point.stats.started),
                static_cast<long long>(point.stats.failed),
                static_cast<long long>(point.stats.killed),
                static_cast<long long>(point.stats.speculated),
                identical ? "" : "  RESULTS DIVERGED");
    if (report != nullptr) {
      report->AddRow()
          .Str("plan", plan)
          .Num("failure_probability", p)
          .Num("wall_seconds", point.seconds)
          .Num("no_speculation_seconds", no_spec_seconds)
          .Num("results", static_cast<double>(point.results))
          .Num("attempts_started", static_cast<double>(point.stats.started))
          .Num("attempts_failed", static_cast<double>(point.stats.failed))
          .Num("attempts_killed", static_cast<double>(point.stats.killed))
          .Num("attempts_speculated",
               static_cast<double>(point.stats.speculated))
          .Num("identical_to_clean_run", identical ? 1.0 : 0.0);
    }
  }
  std::printf("\n");
}

void RunSweep(std::size_t n, BenchReport* report) {
  GeneratorOptions gopts;
  auto data = GenerateDataset(DatasetKind::kNusWide, n, gopts);
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  std::shared_ptr<const SpectralHashing> hash(
      SpectralHashing::Train(data, hopts).ValueOrDie().release());

  SweepPlan("MRHA-A", [&](mr::ExecutionOptions exec) -> std::size_t {
    mr::Cluster cluster({16, 4, 0});
    MrhaOptions opts;
    opts.option = MrhaOption::kA;
    opts.pretrained = hash;
    opts.exec = std::move(exec);
    auto r = RunMrhaJoin(data, data, opts, &cluster);
    return r.ok() ? r->pairs.size() : 0;
  }, report);
  SweepPlan("MRHA-B", [&](mr::ExecutionOptions exec) -> std::size_t {
    mr::Cluster cluster({16, 4, 0});
    MrhaOptions opts;
    opts.option = MrhaOption::kB;
    opts.pretrained = hash;
    opts.exec = std::move(exec);
    auto r = RunMrhaJoin(data, data, opts, &cluster);
    return r.ok() ? r->pairs.size() : 0;
  }, report);
  SweepPlan("PMH-10", [&](mr::ExecutionOptions exec) -> std::size_t {
    mr::Cluster cluster({16, 4, 0});
    PmhOptions opts;
    opts.pretrained = hash;
    opts.exec = std::move(exec);
    auto r = RunPmhJoin(data, data, opts, &cluster);
    return r.ok() ? r->pairs.size() : 0;
  }, report);
  SweepPlan("PGBJ", [&](mr::ExecutionOptions exec) -> std::size_t {
    mr::Cluster cluster({16, 4, 0});
    PgbjOptions opts;
    opts.k = 10;
    opts.exec = std::move(exec);
    auto r = RunPgbjJoin(data, data, opts, &cluster);
    std::size_t neighbors = 0;
    if (r.ok()) {
      for (const auto& row : r->rows) neighbors += row.neighbors.size();
    }
    return neighbors;
  }, report);
}

// A small traced word-count with one scripted failure and one straggler:
// demonstrates the JSON export the observability layer hands to tooling.
void PrintSampleTrace() {
  mr::Cluster cluster({4, 2, 4});
  mr::JobSpec spec;
  spec.name = "traced-wordcount";
  auto word = [](const char* w) {
    return std::vector<uint8_t>(w, w + std::strlen(w));
  };
  spec.input_splits = {{{{}, word("ha")}, {{}, word("gray")}},
                       {{{}, word("ha")}, {{}, word("pivot")}}};
  spec.map_fn = [](const mr::Record& rec, mr::Emitter* out) -> Status {
    out->Emit(rec.value, {1});
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>& values,
                      mr::Emitter* out) -> Status {
    out->Emit(key, {static_cast<uint8_t>(values.size())});
    return Status::OK();
  };
  spec.options.num_reducers = 2;
  spec.options.max_attempts = 3;
  spec.options.speculation.enabled = true;
  spec.options.speculation.slow_attempt_seconds = 0.02;
  spec.options.fault = std::make_shared<mr::TargetedFaultInjector>(
      std::vector<mr::TargetedFault>{
          {mr::TaskKind::kMap, 0, /*fail_first_attempts=*/1, 0.0},
          {mr::TaskKind::kMap, 1, 0, /*delay_seconds=*/0.5},
      });
  auto result = RunJob(spec, &cluster);
  if (!result.ok()) {
    std::printf("traced job failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("--- sample JobEventTrace (JSON) ---\n%s\n",
              result->trace.ToJson().c_str());
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
  }
  std::printf("=== Fault-tolerance sweep: per-attempt failure probability "
              "vs wall clock (scale %.2f) ===\n", args.scale);
  std::printf("max_attempts=10, speculation on (threshold 50ms), straggler "
              "p/2 with 100ms delay\n\n");
  hamming::bench::BenchReport report("fault", args.scale);
  hamming::bench::RunSweep(args.Scaled(2000), &report);
  report.Write();
  if (trace) hamming::bench::PrintSampleTrace();
  return 0;
}

// Reproduces Figure 9: MapReduce join running time vs data size
// (x5..x25) for PGBJ, PMH-10, MRHA-Index-A and MRHA-Index-B. Expected
// shape: PGBJ grows super-linearly (the exact in-space kNN join), the
// hash-based plans stay near-linear, and the MRHA plans beat PMH-10.
#include <cstdio>

#include "bench_common.h"
#include "dataset/scale.h"
#include "mrjoin/mrha.h"
#include "mrjoin/pgbj.h"
#include "mrjoin/pmh.h"

namespace hamming::bench {
namespace {

using namespace hamming::mrjoin;  // NOLINT(build/namespaces)

// The in-process runtime executes map/reduce work on real threads but
// moves shuffle/broadcast bytes through memory. A Hadoop 0.22 cluster
// pays disk + network for every one of those bytes; its effective
// end-to-end shuffle throughput is on the order of 10 MB/s per job
// (spill, sort, fetch, merge). Running time here is therefore measured
// compute time plus that modeled data-movement time, which is what makes
// the plans' byte footprints (Figure 7) show up in Figure 9 exactly as
// they do on a real cluster.
constexpr double kEffectiveShuffleMBps = 10.0;

double ModeledSeconds(double wall_s, int64_t moved_bytes) {
  return wall_s + static_cast<double>(moved_bytes) /
                      (kEffectiveShuffleMBps * 1048576.0);
}

void RunDataset(DatasetKind kind, std::size_t base_n,
                const std::vector<std::size_t>& factors, std::size_t knn_k,
                BenchReport* report, obs::MetricsRegistry* metrics) {
  GeneratorOptions gopts;
  auto base = GenerateDataset(kind, base_n, gopts);
  // The hash is learned once per dataset (the paper re-learns it only
  // when enough new data arrives) and shared by every plan/scale point,
  // so the sweep measures join work, not repeated Jacobi decompositions.
  SpectralHashingOptions hopts;
  hopts.code_bits = 32;
  std::shared_ptr<const SpectralHashing> hash(
      SpectralHashing::Train(base, hopts).ValueOrDie().release());

  std::printf("\n(%s)  base n=%zu, self-join workload, h=3, k=%zu\n",
              DatasetKindName(kind), base_n, knn_k);
  std::printf("%-8s %12s %12s %14s %14s\n", "size(x)", "PGBJ(s)",
              "PMH-10(s)", "MRHA-A(s)", "MRHA-B(s)");
  std::printf("%s\n", Separator());

  // Shared plan configuration via the MRJoinOptions base, as in
  // bench_fig7; PGBJ keeps its constructor's lower sample_rate default.
  MRJoinOptions shared;
  shared.num_partitions = 16;
  shared.exec.metrics = metrics;

  for (std::size_t f : factors) {
    FloatMatrix data = ScaleDataset(base, f);
    double pgbj_s = 0, pmh_s = 0, a_s = 0, b_s = 0;
    {
      mr::Cluster cluster({16, 4, 0});
      PgbjOptions opts;
      opts.exec = shared.exec;
      opts.num_partitions = shared.num_partitions;
      opts.k = knn_k;
      obs::Stopwatch w;
      auto r = RunPgbjJoin(data, data, opts, &cluster);
      if (r.ok()) {
        pgbj_s = ModeledSeconds(w.ElapsedSeconds(),
                                r->shuffle_bytes + r->broadcast_bytes);
      }
    }
    {
      mr::Cluster cluster({16, 4, 0});
      PmhOptions opts;
      static_cast<MRJoinOptions&>(opts) = shared;
      opts.num_tables = 10;
      opts.pretrained = hash;
      obs::Stopwatch w;
      auto r = RunPmhJoin(data, data, opts, &cluster);
      if (r.ok()) {
        pmh_s = ModeledSeconds(w.ElapsedSeconds(),
                               r->shuffle_bytes + r->broadcast_bytes);
      }
    }
    {
      mr::Cluster cluster({16, 4, 0});
      MrhaOptions opts;
      static_cast<MRJoinOptions&>(opts) = shared;
      opts.option = MrhaOption::kA;
      opts.pretrained = hash;
      obs::Stopwatch w;
      auto r = RunMrhaJoin(data, data, opts, &cluster);
      if (r.ok()) {
        a_s = ModeledSeconds(w.ElapsedSeconds(),
                             r->shuffle_bytes + r->broadcast_bytes);
      }
    }
    {
      mr::Cluster cluster({16, 4, 0});
      MrhaOptions opts;
      static_cast<MRJoinOptions&>(opts) = shared;
      opts.option = MrhaOption::kB;
      opts.pretrained = hash;
      obs::Stopwatch w;
      auto r = RunMrhaJoin(data, data, opts, &cluster);
      if (r.ok()) {
        b_s = ModeledSeconds(w.ElapsedSeconds(),
                             r->shuffle_bytes + r->broadcast_bytes);
      }
    }
    std::printf("%-8zu %12.3f %12.3f %14.3f %14.3f\n", f, pgbj_s, pmh_s,
                a_s, b_s);
    if (report != nullptr) {
      report->AddRow()
          .Str("dataset", DatasetKindName(kind))
          .Num("scale_factor", static_cast<double>(f))
          .Num("pgbj_seconds", pgbj_s)
          .Num("pmh_seconds", pmh_s)
          .Num("mrha_a_seconds", a_s)
          .Num("mrha_b_seconds", b_s);
    }
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Figure 9: running time of Hamming-join / kNN-join plans "
              "(scale %.2f) ===\n", args.scale);
  std::vector<std::size_t> factors{5, 10, 15, 20, 25};
  hamming::obs::MetricsRegistry metrics;
  hamming::bench::BenchReport report("fig9", args.scale);
  hamming::bench::RunDataset(hamming::DatasetKind::kNusWide,
                             args.Scaled(300), factors, /*knn_k=*/10,
                             &report, &metrics);
  hamming::bench::RunDataset(hamming::DatasetKind::kFlickr,
                             args.Scaled(200), factors, /*knn_k=*/10,
                             &report, &metrics);
  hamming::bench::RunDataset(hamming::DatasetKind::kDbpedia,
                             args.Scaled(300), factors, /*knn_k=*/10,
                             &report, &metrics);
  report.Write(&metrics);
  return 0;
}

// trace_demo: runs one small MapReduce job that exercises every event
// source the observability layer knows — task attempts, an injected
// failure, a straggler raced by a speculative backup, shuffle spills and
// merge passes under a tiny memory budget — and writes
//
//   * a Chrome trace-event / Perfetto timeline (trace_demo_trace.json),
//   * a metrics snapshot with per-reducer load histograms and phase
//     wall-clock (trace_demo_metrics.json),
//
// so scripts/check.sh (and anyone debugging the runtime) can validate
// the end-to-end observability pipeline without running a full bench.
// Usage: trace_demo [trace_out.json [metrics_out.json]]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "observability/memtrack.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace hamming {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

int Run(const std::string& trace_path, const std::string& metrics_path) {
  constexpr std::size_t kNodes = 4;
  mr::Cluster cluster({kNodes, 2, 0});
  obs::TraceCollector tracer({kNodes});
  obs::MetricsRegistry metrics;

  mr::JobSpec spec;
  spec.name = "trace-demo";
  // A word-count over enough records that the 4 KiB shuffle budget
  // forces spills and a multi-run merge on the reduce side.
  std::vector<mr::Record> input;
  for (std::size_t i = 0; i < 2000; ++i) {
    input.push_back({{}, Bytes("word-" + std::to_string(i % 61))});
  }
  spec.input_splits = mr::SplitEvenly(std::move(input), 8);
  spec.map_fn = [](const mr::Record& rec, mr::Emitter* out) -> Status {
    out->Emit(rec.value, {1});
    return Status::OK();
  };
  spec.reduce_fn = [](const std::vector<uint8_t>& key,
                      const std::vector<std::vector<uint8_t>>& values,
                      mr::Emitter* out) -> Status {
    out->Emit(key, Bytes(std::to_string(values.size())));
    return Status::OK();
  };
  spec.options.num_reducers = 3;
  spec.options.max_attempts = 3;
  spec.options.speculation.enabled = true;
  spec.options.speculation.slow_attempt_seconds = 0.02;
  spec.options.shuffle_memory_bytes = 4 << 10;
  spec.options.fault = std::make_shared<mr::TargetedFaultInjector>(
      std::vector<mr::TargetedFault>{
          // Map 0 fails once (retry), map 1 straggles (speculated).
          {mr::TaskKind::kMap, 0, /*fail_first_attempts=*/1, 0.0},
          {mr::TaskKind::kMap, 1, 0, /*delay_seconds=*/0.2},
      });
  spec.options.observer = &tracer;
  spec.options.metrics = &metrics;

  tracer.BeginJob("trace-demo");
  auto result = mr::RunJob(spec, &cluster);
  if (!result.ok()) {
    std::fprintf(stderr, "trace_demo: job failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const mr::AttemptStats stats = result->trace.Stats();
  std::printf("job done: %lld attempts started, %lld failed, %lld killed, "
              "%lld speculated; reducer records skew %.3f\n",
              static_cast<long long>(stats.started),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.killed),
              static_cast<long long>(stats.speculated),
              result->reducer_load.records_skew);

  if (!tracer.WriteChromeJson(trace_path)) {
    std::fprintf(stderr, "trace_demo: cannot write %s\n",
                 trace_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu spans)\n", trace_path.c_str(), tracer.size());

  obs::RecordPeakRss(&metrics);
  std::FILE* f = std::fopen(metrics_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_demo: cannot write %s\n",
                 metrics_path.c_str());
    return 1;
  }
  const std::string snapshot = metrics.Snapshot().ToJson();
  std::fwrite(snapshot.data(), 1, snapshot.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", metrics_path.c_str());
  return 0;
}

}  // namespace
}  // namespace hamming

int main(int argc, char** argv) {
  std::string trace_path = "trace_demo_trace.json";
  std::string metrics_path = "trace_demo_metrics.json";
  if (argc > 1) trace_path = argv[1];
  if (argc > 2) metrics_path = argv[2];
  return hamming::Run(trace_path, metrics_path);
}

// Reproduces Figure 8: Dynamic HA-Index build time (a) and query
// processing time (b) as the H-Build window length varies (normalized by
// dataset size, 0.005 - 0.04), for index depths 4-7. The paper's
// observations: build time grows with window size and shrinks with
// smaller depth; query time grows slowly (<10% across a 4x window
// increase) — the index is not sensitive to these parameters.
#include <cstdio>

#include "bench_common.h"
#include "index/dynamic_ha_index.h"

namespace hamming::bench {
namespace {

void Run(std::size_t n, std::size_t nq, BenchReport* report) {
  PreparedDataset ds =
      Prepare(DatasetKind::kNusWide, n, nq, /*code_bits=*/32);
  const double window_fractions[] = {0.005, 0.01, 0.015, 0.02,
                                     0.025, 0.03, 0.035, 0.04};
  const std::size_t depths[] = {4, 5, 6, 7};

  std::printf("\n(a) H-Build time (ms), n=%zu (NUS-WIDE)\n", n);
  std::printf("%-10s", "win/n");
  for (std::size_t d : depths) std::printf("   depth=%zu", d);
  std::printf("\n%s\n", Separator());
  // Keep the built indexes for phase (b).
  std::vector<std::vector<DynamicHAIndex>> built(
      std::size(window_fractions));
  for (std::size_t wi = 0; wi < std::size(window_fractions); ++wi) {
    std::printf("%-10.3f", window_fractions[wi]);
    for (std::size_t d : depths) {
      DynamicHAIndexOptions opts;
      opts.window = std::max<std::size_t>(
          2, static_cast<std::size_t>(window_fractions[wi] *
                                      static_cast<double>(n)));
      opts.max_depth = d;
      DynamicHAIndex index(opts);
      obs::Stopwatch watch;
      // Build on generated data cannot fail; timing is the point here.
      (void)index.Build(ds.codes);
      const double build_ms = watch.ElapsedMillis();
      std::printf(" %9.2f", build_ms);
      if (report != nullptr) {
        report->AddRow()
            .Str("phase", "build")
            .Num("window_fraction", window_fractions[wi])
            .Num("depth", static_cast<double>(d))
            .Num("millis", build_ms);
      }
      built[wi].push_back(std::move(index));
    }
    std::printf("\n");
  }

  std::printf("\n(b) query time (ms), h=3\n");
  std::printf("%-10s", "win/n");
  for (std::size_t d : depths) std::printf("   depth=%zu", d);
  std::printf("\n%s\n", Separator());
  for (std::size_t wi = 0; wi < std::size(window_fractions); ++wi) {
    std::printf("%-10.3f", window_fractions[wi]);
    for (std::size_t di = 0; di < std::size(depths); ++di) {
      const double query_ms =
          MeasureQueryMillis(built[wi][di], ds.query_codes, 3);
      std::printf(" %9.4f", query_ms);
      if (report != nullptr) {
        report->AddRow()
            .Str("phase", "query")
            .Num("window_fraction", window_fractions[wi])
            .Num("depth", static_cast<double>(depths[di]))
            .Num("millis", query_ms);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Figure 8: DHA-Index build/query time vs window length "
              "and depth (scale %.2f) ===\n", args.scale);
  hamming::bench::BenchReport report("fig8", args.scale);
  hamming::bench::Run(args.Scaled(20000), 100, &report);
  report.Write();
  return 0;
}

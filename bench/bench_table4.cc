// Reproduces Table 4: overall Hamming-select comparison — query time,
// update time, and memory usage for Nested-Loops, MH-4, MH-10, HEngine,
// Radix-Tree, SHA-Index and DHA-Index on the three datasets (32-bit
// codes, h = 3). DHA memory is reported as full/internal-only, matching
// the paper's "28/11" notation.
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "index/dynamic_ha_index.h"
#include "index/hengine.h"
#include "index/hmsearch.h"
#include "index/linear_scan.h"
#include "index/multi_hash_table.h"
#include "index/radix_tree.h"
#include "index/static_ha_index.h"

namespace hamming::bench {
namespace {

constexpr std::size_t kHamming = 3;

struct MethodSpec {
  const char* name;
  std::function<std::unique_ptr<HammingIndex>()> make;
  bool skip_update;  // Nested-Loops update is just vector surgery
};

void RunDataset(DatasetKind kind, std::size_t n, std::size_t nq,
                BenchReport* report, obs::MetricsRegistry* metrics) {
  PreparedDataset ds = Prepare(kind, n, nq, /*code_bits=*/32);
  const obs::QueryStatsHistograms qhists =
      obs::QueryStatsHistograms::Register(metrics);
  std::printf("\n(%s)  n=%zu, L=32, h=%zu, %zu queries\n",
              DatasetKindName(kind), n, kHamming, nq);
  std::printf("%-14s %14s %14s %20s\n", "method", "query(ms)", "update(ms)",
              "space");
  std::printf("%s\n", Separator());

  std::vector<MethodSpec> methods;
  methods.push_back({"Nested-Loops",
                     [] { return std::make_unique<LinearScanIndex>(); },
                     false});
  methods.push_back(
      {"MH-4", [] { return std::make_unique<MultiHashTableIndex>(4); },
       false});
  methods.push_back(
      {"MH-10", [] { return std::make_unique<MultiHashTableIndex>(10); },
       false});
  methods.push_back(
      {"HEngine",
       [] { return std::make_unique<HEngineIndex>(kHamming); }, false});
  methods.push_back(
      {"HmSearch",
       [] { return std::make_unique<HmSearchIndex>(kHamming); }, false});
  methods.push_back(
      {"Radix-Tree", [] { return std::make_unique<RadixTreeIndex>(); },
       false});
  methods.push_back(
      {"SHA-Index",
       [] { return std::make_unique<StaticHAIndex>(StaticHAIndexOptions{8}); },
       false});
  methods.push_back({"DHA-Index",
                     [] { return std::make_unique<DynamicHAIndex>(); },
                     false});

  for (const auto& m : methods) {
    auto index = m.make();
    Status st = index->Build(ds.codes);
    if (!st.ok()) {
      std::printf("%-14s build failed: %s\n", m.name, st.ToString().c_str());
      continue;
    }
    double query_ms =
        MeasureQueryMillis(*index, ds.query_codes, kHamming, metrics, qhists);
    double update_ms = MeasureUpdateMillis(index.get(), ds.codes);
    MemoryBreakdown mem = index->Memory();
    if (report != nullptr) {
      report->AddRow()
          .Str("dataset", DatasetKindName(kind))
          .Str("method", m.name)
          .Num("query_ms", query_ms)
          .Num("update_ms", update_ms)
          .Num("total_bytes", static_cast<double>(mem.total()))
          .Num("internal_bytes", static_cast<double>(mem.internal_bytes));
    }
    if (std::string(m.name) == "DHA-Index") {
      // Paper notation: total / internal-only (leafless broadcast form).
      std::printf("%-14s %14.4f %14.4f %12s/%s\n", m.name, query_ms,
                  update_ms, obs::FormatBytes(mem.total()).c_str(),
                  obs::FormatBytes(mem.internal_bytes).c_str());
    } else {
      std::printf("%-14s %14.4f %14.4f %20s\n", m.name, query_ms, update_ms,
                  obs::FormatBytes(mem.total()).c_str());
    }
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Table 4: Hamming-select — query/update time and memory "
              "(scale %.2f) ===\n", args.scale);
  const std::size_t nq = 200;
  hamming::obs::MetricsRegistry metrics;
  hamming::bench::BenchReport report("table4", args.scale);
  hamming::bench::RunDataset(hamming::DatasetKind::kNusWide,
                             args.Scaled(20000), nq, &report, &metrics);
  hamming::bench::RunDataset(hamming::DatasetKind::kFlickr,
                             args.Scaled(20000), nq, &report, &metrics);
  hamming::bench::RunDataset(hamming::DatasetKind::kDbpedia,
                             args.Scaled(20000), nq, &report, &metrics);
  report.Write(&metrics);
  return 0;
}

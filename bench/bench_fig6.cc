// Reproduces Figure 6: effect of the Hamming-distance threshold h on
// Hamming-select query time, per dataset, for all methods. The paper's
// observation: MH and HEngine degrade steeply with h, the HA-Index
// variants grow slowly because the search terminates early in upper
// index levels.
#include <cstdio>

#include "bench_common.h"
#include "index/dynamic_ha_index.h"
#include "index/hengine.h"
#include "index/linear_scan.h"
#include "index/multi_hash_table.h"
#include "index/radix_tree.h"
#include "index/static_ha_index.h"

namespace hamming::bench {
namespace {

void RunDataset(DatasetKind kind, std::size_t n, std::size_t nq,
                BenchReport* report, obs::MetricsRegistry* metrics) {
  PreparedDataset ds = Prepare(kind, n, nq, /*code_bits=*/32);
  const std::size_t max_h = 6;
  const obs::QueryStatsHistograms qhists =
      obs::QueryStatsHistograms::Register(metrics);

  std::printf("\n(%s)  n=%zu, L=32 — avg query ms vs threshold h\n",
              DatasetKindName(kind), n);
  std::printf("%-14s", "method");
  for (std::size_t h = 1; h <= max_h; ++h) std::printf(" %10s%zu", "h=", h);
  std::printf("\n%s\n", Separator());

  struct Row {
    const char* name;
    std::unique_ptr<HammingIndex> index;
  };
  std::vector<Row> rows;
  rows.push_back({"Nested-Loops", std::make_unique<LinearScanIndex>()});
  rows.push_back({"MH-4", std::make_unique<MultiHashTableIndex>(4)});
  rows.push_back({"MH-10", std::make_unique<MultiHashTableIndex>(10)});
  rows.push_back({"HEngine", std::make_unique<HEngineIndex>(max_h)});
  rows.push_back({"Radix-Tree", std::make_unique<RadixTreeIndex>()});
  rows.push_back({"SHA-Index", std::make_unique<StaticHAIndex>(
                                   StaticHAIndexOptions{8})});
  rows.push_back({"DHA-Index", std::make_unique<DynamicHAIndex>()});

  for (auto& row : rows) {
    Status st = row.index->Build(ds.codes);
    std::printf("%-14s", row.name);
    if (!st.ok()) {
      std::printf("  build failed: %s\n", st.ToString().c_str());
      continue;
    }
    for (std::size_t h = 1; h <= max_h; ++h) {
      double ms =
          MeasureQueryMillis(*row.index, ds.query_codes, h, metrics, qhists);
      std::printf(" %11.4f", ms);
      if (report != nullptr) {
        report->AddRow()
            .Str("dataset", DatasetKindName(kind))
            .Str("method", row.name)
            .Num("h", static_cast<double>(h))
            .Num("query_ms", ms);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // keep progress visible when piped
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== Figure 6: query time vs Hamming threshold (scale %.2f) "
              "===\n", args.scale);
  const std::size_t nq = 100;
  hamming::obs::MetricsRegistry metrics;
  hamming::bench::BenchReport report("fig6", args.scale);
  hamming::bench::RunDataset(hamming::DatasetKind::kNusWide,
                             args.Scaled(20000), nq, &report, &metrics);
  hamming::bench::RunDataset(hamming::DatasetKind::kFlickr,
                             args.Scaled(20000), nq, &report, &metrics);
  hamming::bench::RunDataset(hamming::DatasetKind::kDbpedia,
                             args.Scaled(20000), nq, &report, &metrics);
  report.Write(&metrics);
  return 0;
}

// External-shuffle sweep: shuffle memory budget x dataset size x
// combiner on/off over a synthetic aggregation job, measuring wall
// clock, spill counts, spilled bytes, and merge fan-in, and asserting
// the outputs stay byte-identical to the unlimited-budget in-memory
// run at every point (the invariant DESIGN.md 4.10 argues).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace hamming::bench {
namespace {

using mr::Record;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// An aggregation job shaped like the shuffle-heavy stages of the join
// plans: n records spread over num_keys grouping keys, 16-byte values,
// reducers summing group sizes. The key space is wide enough that
// map-side combining pays but never collapses the shuffle entirely.
mr::JobSpec AggregationJob(std::size_t n, std::size_t num_keys,
                           bool with_combiner) {
  mr::JobSpec spec;
  spec.name = "shuffle-aggregate";
  std::vector<Record> input;
  input.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic scatter of records over keys.
    std::size_t key = (i * 2654435761u) % num_keys;
    input.push_back({{}, Bytes("key-" + std::to_string(key))});
  }
  spec.input_splits = mr::SplitEvenly(std::move(input), 16);
  spec.map_fn = [](const Record& rec, mr::Emitter* out) -> Status {
    out->Emit(rec.value, Bytes("0000000000000001"));  // 16-byte payload
    return Status::OK();
  };
  auto sum = [](const std::vector<uint8_t>& key,
                const std::vector<std::vector<uint8_t>>& values,
                mr::Emitter* out) -> Status {
    uint64_t total = 0;
    for (const auto& v : values) {
      total += std::stoull(std::string(v.begin(), v.end()));
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llu",
                  static_cast<unsigned long long>(total));
    out->Emit(key, Bytes(buf));
    return Status::OK();
  };
  spec.reduce_fn = sum;
  if (with_combiner) spec.combine_fn = sum;
  spec.options.num_reducers = 8;
  return spec;
}

bool SameOutputs(const std::vector<std::vector<Record>>& a,
                 const std::vector<std::vector<Record>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p) {
    if (a[p].size() != b[p].size()) return false;
    for (std::size_t i = 0; i < a[p].size(); ++i) {
      if (a[p][i].key != b[p][i].key || a[p][i].value != b[p][i].value) {
        return false;
      }
    }
  }
  return true;
}

void Sweep(std::size_t n, BenchReport* report,
           obs::MetricsRegistry* metrics) {
  const std::size_t num_keys = n / 8;
  struct Budget {
    const char* name;
    std::size_t bytes;
  };
  const Budget budgets[] = {
      {"unlimited", mr::kUnlimitedShuffleMemory},
      {"1MiB", std::size_t{1} << 20},
      {"256KiB", std::size_t{256} << 10},
      {"64KiB", std::size_t{64} << 10},
  };
  for (bool combiner : {false, true}) {
    std::printf("n=%zu keys=%zu combiner=%s\n", n, num_keys,
                combiner ? "on" : "off");
    std::printf("  %-10s %9s %8s %12s %8s %8s %10s\n", "budget", "wall(s)",
                "spills", "spilled(MiB)", "fan-in", "passes", "identical");
    std::printf("  %s\n", Separator());
    std::vector<std::vector<Record>> baseline;
    for (const Budget& budget : budgets) {
      mr::Cluster cluster({16, 4, 0});
      mr::JobSpec spec = AggregationJob(n, num_keys, combiner);
      spec.options.shuffle_memory_bytes = budget.bytes;
      spec.options.metrics = metrics;
      obs::Stopwatch watch;
      auto result = RunJob(spec, &cluster);
      const double seconds = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::printf("  %-10s FAILED: %s\n", budget.name,
                    result.status().ToString().c_str());
        continue;
      }
      if (baseline.empty()) baseline = result->outputs;
      const int64_t spills = result->counters.Get(mr::kShuffleSpills);
      const double spilled_mib =
          static_cast<double>(
              result->counters.Get(mr::kShuffleSpilledBytes)) /
          (1024.0 * 1024.0);
      const int64_t fanin = result->counters.Get(mr::kShuffleMergeFanIn);
      const int64_t passes =
          result->trace.Count(mr::JobEventType::kMergePass);
      const bool identical = SameOutputs(baseline, result->outputs);
      std::printf("  %-10s %9.3f %8lld %12.2f %8lld %8lld %10s\n",
                  budget.name, seconds, static_cast<long long>(spills),
                  spilled_mib, static_cast<long long>(fanin),
                  static_cast<long long>(passes),
                  identical ? "yes" : "NO -- DIVERGED");
      if (report != nullptr) {
        report->AddRow()
            .Num("n", static_cast<double>(n))
            .Str("combiner", combiner ? "on" : "off")
            .Str("budget", budget.name)
            .Num("wall_seconds", seconds)
            .Num("spills", static_cast<double>(spills))
            .Num("spilled_mib", spilled_mib)
            .Num("merge_fanin", static_cast<double>(fanin))
            .Num("merge_passes", static_cast<double>(passes))
            .Num("records_skew", result->reducer_load.records_skew)
            .Num("identical", identical ? 1.0 : 0.0);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hamming::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto args = hamming::bench::BenchArgs::Parse(argc, argv);
  std::printf("=== External shuffle sweep: budget x size x combiner "
              "(scale %.2f) ===\n", args.scale);
  std::printf("16 map splits, 8 reducers, 16-byte values; outputs checked "
              "against the unlimited-budget in-memory run\n\n");
  hamming::obs::MetricsRegistry metrics;
  hamming::bench::BenchReport report("shuffle", args.scale);
  for (std::size_t n : {args.Scaled(50000), args.Scaled(200000)}) {
    hamming::bench::Sweep(n, &report, &metrics);
  }
  report.Write(&metrics);
  return 0;
}

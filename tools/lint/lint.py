#!/usr/bin/env python3
"""Repo-invariant linter for the hamming-mr tree.

Self-contained (python3 stdlib only, no LLVM dev deps): it works from a
plain source scan plus, when available, the build's compile_commands.json
(used to verify every src/ translation unit is actually part of the
build, so none of the other checks can be dodged by orphaning a file).

Enforced invariants (rule ids in brackets):

  [layering]       The include-graph layering DAG over src/. Every
                   directory->directory include edge must appear in
                   ALLOWED_EDGES below; additionally the three named
                   reachability rules hold transitively:
                   kernels/common/code never reach mapreduce, mapreduce
                   never reaches index/mrjoin, and observability is a
                   leaf above common (single documented exception:
                   trace.{h,cc} implement the runtime's JobObserver).
  [raw-sync]       No raw std::mutex / std::condition_variable /
                   std::thread (or their lock adapters / headers)
                   outside src/common/ — all synchronization goes
                   through the annotated wrappers in common/sync.h.
  [metric-args]    No side-effecting expressions (++/--/assignment)
                   inside HAMMING_METRIC_* macro arguments; the macros
                   expand to ((void)0) under -DHAMMING_METRICS_DISABLED
                   and must not change behaviour when they vanish.
  [metric-name]    Every string-literal metric registration
                   (Counter/Gauge/Histogram("...")) under src/ uses a
                   lowercase dotted identifier that is declared in the
                   central src/observability/metric_names.h — one
                   place to see the whole namespace, no drive-by
                   families. Dynamic names built from a prefix
                   expression (QueryStatsHistograms, epoch.*) don't
                   match the literal pattern and are exempt by design.
  [batch-first]    Library code under src/ (outside src/index/, which
                   implements the scalar hooks) never calls the scalar
                   HammingIndex::Search/Knn entry points — all query
                   traffic goes through SearchBatch/KnnBatch so the
                   coalesced kernel plans (and, for ConcurrentHAIndex,
                   the one-epoch-per-batch snapshot guarantee) apply.
                   Tests/bench/examples are exempt: scalar calls there
                   exercise the per-family hooks or non-HammingIndex
                   searcher APIs with same-named methods.
  [kernel-tu]      SIMD kernel translation units keep their -m<isa>
                   flags: every TU in KERNEL_TU_FLAGS that appears in
                   compile_commands.json must be compiled with all of
                   its listed flags, and a TU *missing* from the build
                   is a violation unless CMakeCache.txt shows it was
                   deliberately gated off (HAMMING_AVX512=OFF or a
                   failed compiler-flag probe). This stops a CMake
                   refactor from silently dropping a kernel tier or its
                   -march handling.

The old [nodiscard] rule (attribute presence on Status/Result plus
justified (void)-discards) moved to the semantic analyzer
(tools/analyze/analyze.py, rule id [discard]): the regex version could
not see through typedefs, ternaries, or comma expressions, and its
fixtures now live in tools/analyze/selftest/.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

`--self-test` runs the linter against built-in fixtures (one seeded
violation per rule plus clean counterparts) and fails loudly if any rule
stops firing — this is the negative test wired into scripts/check.sh.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Layering DAG: the complete allowlist of directory->directory include
# edges inside src/. An edge not listed here is a violation even if it
# would not create a cycle — growth of the graph is an explicit decision
# made by editing this table (and DESIGN.md §4.12 alongside it).
# --------------------------------------------------------------------------

ALLOWED_EDGES = {
    "common": set(),
    "code": {"common"},
    "kernels": {"code", "common"},
    "observability": {"common"},
    "dataset": {"code", "common"},
    "hashing": {"code", "common", "dataset"},
    "index": {"code", "common", "kernels", "observability"},
    "chem": {"common", "index"},
    "join": {"common", "index", "kernels"},
    "knn": {"code", "common", "dataset", "hashing", "index", "kernels"},
    "ops": {"code", "common", "dataset", "hashing", "index", "join",
            "kernels"},
    "storage": {"common", "hashing", "index", "ops"},
    "mapreduce": {"common", "observability", "storage"},
    "mrjoin": {"code", "common", "dataset", "hashing", "index", "join",
               "knn", "mapreduce", "observability"},
    "serving": {"code", "common", "index", "kernels", "observability"},
}

# Per-file exceptions to ALLOWED_EDGES, as {relative path: extra target
# dirs}. TraceCollector *is* an mr::JobObserver — the adapter between the
# runtime's event stream and the Chrome-trace export lives on the
# observability side so the runtime stays export-format-agnostic.
FILE_EDGE_EXCEPTIONS = {
    "observability/trace.h": {"mapreduce"},
    "observability/trace.cc": {"mapreduce"},
}

# Named reachability rules, checked over the transitive closure of the
# file-level include graph (so a legal direct edge cannot smuggle in an
# illegal layer two hops away).
NO_REACH = [
    ({"kernels", "common", "code"}, {"mapreduce"}),
    ({"mapreduce"}, {"index", "mrjoin"}),
]

SRC_EXTS = (".h", ".cc", ".cpp")

RAW_SYNC_PATTERN = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(_any)?"
    r"|thread|jthread|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(mutex|thread|condition_variable|shared_mutex)>"
)

METRIC_CALL_PATTERN = re.compile(r"\bHAMMING_METRIC_(ADD|SET|OBSERVE)\s*\(")

# ++/--, compound assignment, and simple assignment (but not the
# comparisons ==, <=, >=, !=).
SIDE_EFFECT_PATTERN = re.compile(
    r"\+\+|--|<<=|>>=|[+\-*/%&|^]=(?!=)|(?<![=!<>+\-*/%&|^])=(?!=)")

# Scalar Search( / Knn( through a member access. The open paren must
# immediately follow the name, so SearchBatch(, SearchWithDistances(,
# SearchCodes( and KnnBatch( never match.
BATCH_FIRST_PATTERN = re.compile(r"(\.|->)(Search|Knn)\(")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks out comments and (unless keep_strings) string/char
    literals, preserving newlines and column positions so reported line
    numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(c if keep_strings else " ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(c if keep_strings else " ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(c if keep_strings else " ")
                i += 1
            else:
                out.append(c if keep_strings or c == "\n" else " ")
                i += 1
    return "".join(out)


def iter_source_files(root: str, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SRC_EXTS):
                    yield os.path.join(dirpath, name)


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


INCLUDE_PATTERN = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def quoted_includes(raw_text: str):
    """Yields (line_number, include_path) for every quoted include.

    Works on the *raw* text — the comment/string stripper would blank the
    quoted path. The pattern anchors '#include' at line start, so
    '// #include ...' in prose never matches."""
    for m in INCLUDE_PATTERN.finditer(raw_text):
        line = raw_text.count("\n", 0, m.start()) + 1
        yield line, m.group(1)


# --------------------------------------------------------------------------
# Rule: layering
# --------------------------------------------------------------------------


def check_layering(root: str, violations: list):
    src = os.path.join(root, "src")
    # file-level graph over src/: rel path -> set of included rel paths
    graph = {}
    edges = []  # (rel_file, line, from_dir, to_dir, include_path)
    for path in iter_source_files(root, ["src"]):
        r = rel(src, path)
        from_dir = r.split("/")[0]
        if from_dir not in ALLOWED_EDGES:
            violations.append(Violation(
                rel(root, path), 1, "layering",
                f"directory src/{from_dir} is not in the layering table; "
                "add it to ALLOWED_EDGES in tools/lint/lint.py"))
            continue
        text = open(path, encoding="utf-8").read()
        graph[r] = set()
        for line, inc in quoted_includes(text):
            to_dir = inc.split("/")[0]
            if to_dir not in ALLOWED_EDGES:
                continue  # not a src/ include (gtest, etc.)
            graph[r].add(inc)
            if to_dir != from_dir:
                edges.append((r, line, from_dir, to_dir, inc))

    for r, line, from_dir, to_dir, inc in edges:
        allowed = ALLOWED_EDGES[from_dir] | FILE_EDGE_EXCEPTIONS.get(r, set())
        if to_dir not in allowed:
            violations.append(Violation(
                f"src/{r}", line, "layering",
                f'include "{inc}" creates edge {from_dir} -> {to_dir}, '
                "which is not in the layering DAG"))

    # Transitive reachability over headers.
    reach_cache = {}

    def reachable_dirs(node: str, stack=()):
        if node in reach_cache:
            return reach_cache[node]
        if node in stack:
            return set()  # include cycle; reported implicitly elsewhere
        dirs = set()
        for inc in graph.get(node, ()):
            dirs.add(inc.split("/")[0])
            dirs |= reachable_dirs(inc, stack + (node,))
        reach_cache[node] = dirs
        return dirs

    for r in sorted(graph):
        from_dir = r.split("/")[0]
        if r in FILE_EDGE_EXCEPTIONS:
            continue
        reached = reachable_dirs(r)
        for sources, targets in NO_REACH:
            if from_dir in sources:
                hit = (reached & targets) - FILE_EDGE_EXCEPTIONS.get(r, set())
                # Drop targets only reachable through exception files.
                if hit and not _only_via_exceptions(graph, r, hit):
                    violations.append(Violation(
                        f"src/{r}", 1, "layering",
                        f"{from_dir} transitively reaches "
                        f"{', '.join(sorted(hit))} (forbidden layer)"))


def _only_via_exceptions(graph, start, targets):
    """True if every path from start into `targets` passes through a file
    listed in FILE_EDGE_EXCEPTIONS (i.e. the reach is already blessed)."""
    seen = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen or node in FILE_EDGE_EXCEPTIONS and node != start:
            continue
        seen.add(node)
        for inc in graph.get(node, ()):
            if inc.split("/")[0] in targets:
                return False
            stack.append(inc)
    return True


# --------------------------------------------------------------------------
# Rule: raw-sync
# --------------------------------------------------------------------------


def check_raw_sync(root: str, violations: list):
    for path in iter_source_files(
            root, ["src", "tests", "bench", "examples", "fuzz"]):
        r = rel(root, path)
        if r.startswith("src/common/"):
            continue  # the one directory allowed to touch std primitives
        text = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for i, line in enumerate(text.split("\n"), start=1):
            m = RAW_SYNC_PATTERN.search(line)
            if m:
                violations.append(Violation(
                    r, i, "raw-sync",
                    f"raw '{m.group(0).strip()}' outside src/common/ — use "
                    "the annotated wrappers in common/sync.h "
                    "(Mutex/MutexLock/CondVar/Thread)"))


# --------------------------------------------------------------------------
# Rule: batch-first
# --------------------------------------------------------------------------


def check_batch_first(root: str, violations: list):
    for path in iter_source_files(root, ["src"]):
        r = rel(root, path)
        if r.startswith("src/index/"):
            continue  # the directory that *implements* the scalar hooks
        text = strip_comments_and_strings(open(path, encoding="utf-8").read())
        for i, line in enumerate(text.split("\n"), start=1):
            m = BATCH_FIRST_PATTERN.search(line)
            if m:
                violations.append(Violation(
                    r, i, "batch-first",
                    f"scalar '{m.group(2)}(' call — library code is "
                    "batch-first; route queries through "
                    "SearchBatch/KnnBatch (batch of one if need be)"))


# --------------------------------------------------------------------------
# Rule: metric-name
# --------------------------------------------------------------------------

METRIC_NAMES_HEADER = "src/observability/metric_names.h"

# A string-literal first argument to a registration call. Dynamic names
# (prefix + ".suffix", a variable) don't start with a quote right after
# the paren and therefore never match — they are the blessed escape
# hatch for per-instance families.
METRIC_REGISTRATION_PATTERN = re.compile(
    r'\b(Counter|Gauge|Histogram)\s*\(\s*"([^"]*)"\s*\)')

# Lowercase dotted identifier: at least two dot-separated segments of
# [a-z0-9_], starting with a letter ("serving.queue_wait_us").
METRIC_NAME_FORMAT = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def _declared_metric_names(root: str):
    path = os.path.join(root, METRIC_NAMES_HEADER)
    if not os.path.isfile(path):
        return None
    return set(re.findall(r'"([^"]+)"', open(path, encoding="utf-8").read()))


def check_metric_names(root: str, violations: list):
    declared = _declared_metric_names(root)
    for path in iter_source_files(root, ["src"]):
        r = rel(root, path)
        if r == METRIC_NAMES_HEADER:
            continue
        text = strip_comments_and_strings(
            open(path, encoding="utf-8").read(), keep_strings=True)
        for m in METRIC_REGISTRATION_PATTERN.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            kind, name = m.group(1), m.group(2)
            if not METRIC_NAME_FORMAT.match(name):
                violations.append(Violation(
                    r, line, "metric-name",
                    f'{kind}("{name}") — metric names are lowercase '
                    'dotted identifiers ("family.metric_name")'))
            elif declared is None:
                violations.append(Violation(
                    r, line, "metric-name",
                    f'{kind}("{name}") but {METRIC_NAMES_HEADER} is '
                    "missing — literal metric names must be declared "
                    "there"))
            elif name not in declared:
                violations.append(Violation(
                    r, line, "metric-name",
                    f'{kind}("{name}") is not declared in '
                    f"{METRIC_NAMES_HEADER} — add the constant there "
                    "(one place to see the whole metric namespace)"))


# --------------------------------------------------------------------------
# Rule: metric-args
# --------------------------------------------------------------------------


def _strip_preprocessor(text: str) -> str:
    """Blanks preprocessor directives (with backslash continuations) so
    the macro *definitions* in metrics.h don't trip the call-site scan."""
    out_lines = []
    in_directive = False
    for line in text.split("\n"):
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            out_lines.append("")
        else:
            out_lines.append(line)
    return "\n".join(out_lines)


def _split_top_level_args(text: str, start: int):
    """`start` indexes the opening paren; returns (args, end_index) or
    (None, start) if the parens never balance."""
    depth = 0
    args = []
    current = []
    i = start
    while i < len(text):
        c = text[i]
        if c in "([{":
            depth += 1
            if depth > 1:
                current.append(c)
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(current))
                return args, i
            current.append(c)
        elif c == "," and depth == 1:
            args.append("".join(current))
            current = []
        else:
            current.append(c)
        i += 1
    return None, start


def check_metric_args(root: str, violations: list):
    for path in iter_source_files(
            root, ["src", "tests", "bench", "examples", "fuzz"]):
        r = rel(root, path)
        text = _strip_preprocessor(
            strip_comments_and_strings(open(path, encoding="utf-8").read()))
        for m in METRIC_CALL_PATTERN.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            args, _ = _split_top_level_args(text, m.end() - 1)
            if args is None:
                violations.append(Violation(
                    r, line, "metric-args",
                    "unbalanced parentheses in HAMMING_METRIC_ call"))
                continue
            for arg in args:
                if SIDE_EFFECT_PATTERN.search(arg.strip()):
                    violations.append(Violation(
                        r, line, "metric-args",
                        f"side-effecting expression '{arg.strip()}' in "
                        "HAMMING_METRIC_ argument — it vanishes under "
                        "-DHAMMING_METRICS_DISABLED"))


# --------------------------------------------------------------------------
# compile_commands.json coverage
# --------------------------------------------------------------------------


# SIMD translation units and the ISA flags their compile command must
# carry, plus the CMake cache variables that legitimately gate each TU
# out of the build (failed compiler-flag probes; the explicit OFF knob).
KERNEL_TU_FLAGS = {
    "src/kernels/hamming_kernels_avx2.cc": {
        "flags": ["-mavx2"],
        "probe_vars": ["HAMMING_CXX_HAS_MAVX2"],
        "option_var": None,
    },
    "src/kernels/hamming_kernels_avx512.cc": {
        "flags": ["-mavx512f", "-mavx512bw", "-mavx512vpopcntdq"],
        "probe_vars": ["HAMMING_CXX_HAS_MAVX512F",
                       "HAMMING_CXX_HAS_MAVX512BW",
                       "HAMMING_CXX_HAS_MAVX512VPOPCNTDQ"],
        "option_var": "HAMMING_AVX512",
    },
}

_CMAKE_FALSE = {"", "0", "off", "no", "false", "n", "ignore", "notfound"}


def _cmake_truthy(value) -> bool:
    if value is None:
        return False
    v = value.strip().lower()
    return not (v in _CMAKE_FALSE or v.endswith("-notfound"))


def _read_cmake_cache(build_dir: str) -> dict:
    cache = {}
    path = os.path.join(build_dir, "CMakeCache.txt")
    if not os.path.isfile(path):
        return cache
    for line in open(path, encoding="utf-8"):
        line = line.strip()
        if not line or line.startswith(("#", "//")):
            continue
        m = re.match(r"([^:=]+):[^=]*=(.*)", line)
        if m:
            cache[m.group(1)] = m.group(2)
    return cache


def check_kernel_tus(root: str, build_dir: str, violations: list):
    cc_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(cc_path):
        return  # the coverage check already reported the missing export
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    by_file = {}
    for e in entries:
        cmd = e.get("command") or " ".join(e.get("arguments", []))
        by_file[os.path.realpath(e["file"])] = cmd
    cache = _read_cmake_cache(build_dir)
    for tu, spec in sorted(KERNEL_TU_FLAGS.items()):
        path = os.path.join(root, tu)
        if not os.path.isfile(path):
            continue  # tier not present in this tree
        cmd = by_file.get(os.path.realpath(path))
        if cmd is not None:
            for flag in spec["flags"]:
                if not re.search(re.escape(flag) + r"(\s|$)", cmd):
                    violations.append(Violation(
                        tu, 1, "kernel-tu",
                        f"compiled without {flag} — the per-TU "
                        "COMPILE_OPTIONS in src/CMakeLists.txt lost its "
                        "ISA flag"))
            continue
        option = spec["option_var"]
        if option is not None and cache.get(option, "").strip().upper() == \
                "OFF":
            continue  # deliberately disabled tier
        if spec["probe_vars"] and not all(
                _cmake_truthy(cache.get(v)) for v in spec["probe_vars"]):
            continue  # compiler cannot build this tier
        violations.append(Violation(
            tu, 1, "kernel-tu",
            "SIMD TU missing from compile_commands.json although its "
            "compiler-flag probes passed — the build silently dropped "
            "this kernel tier"))


def check_build_coverage(root: str, build_dir: str, violations: list):
    cc_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(cc_path):
        print(f"lint: note: {cc_path} not found; skipping build-coverage "
              "check (configure with cmake to export it)", file=sys.stderr)
        return
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    compiled = {os.path.realpath(e["file"]) for e in entries}
    for path in iter_source_files(root, ["src"]):
        if not path.endswith((".cc", ".cpp")):
            continue
        if os.path.realpath(path) not in compiled:
            violations.append(Violation(
                rel(root, path), 1, "build-coverage",
                "translation unit is not in compile_commands.json — "
                "orphaned files dodge every compiled check"))


# --------------------------------------------------------------------------
# Self-test: seeded violations must fire, clean fixtures must not.
# --------------------------------------------------------------------------

FIXTURES = {
    # (relative path, contents, expected rule or None for clean)
    "src/kernels/bad_layer.h":
        ('#pragma once\n#include "mapreduce/job.h"\n', "layering"),
    "src/observability/bad_leaf.cc":
        ('#include "storage/file_io.h"\n', "layering"),
    "src/index/bad_sync.cc":
        ("#include <mutex>\nstd::mutex mu;\n", "raw-sync"),
    "src/ops/bad_metric.cc":
        ("void f(int x) { HAMMING_METRIC_ADD(reg, id, ++x); }\n",
         "metric-args"),
    "src/ops/bad_metric2.cc":
        ("void f(int x) { HAMMING_METRIC_SET(reg, id, x += 2); }\n",
         "metric-args"),
    # The (void)-discard fixtures that used to live here moved with the
    # [nodiscard] rule to tools/analyze/selftest/ (bad_discard_*.cc,
    # good_discard.cc), asserted by `analyze.py --self-test`.
    "src/ops/bad_scalar.cc":
        ("void f() { auto hits = idx->Search(q, 3); }\n", "batch-first"),
    "src/ops/bad_metric_name.cc":
        ('void f() { auto id = reg->Counter("Serving.QueueDepth"); }\n',
         "metric-name"),
    "src/ops/bad_metric_name2.cc":
        ('void f() { auto id = reg->Histogram("serving.undeclared_hist"); }'
         "\n", "metric-name"),
    # Clean counterparts: none of these may fire.
    "src/kernels/good_layer.h":
        ('#pragma once\n#include "code/binary_code.h"\n', None),
    "src/index/good_sync.cc":
        ('#include "common/sync.h"\n'
         "// a comment mentioning std::mutex is fine\n"
         "hamming::Mutex mu;\n", None),
    "src/ops/good_metric.cc":
        ("void f(int x) { HAMMING_METRIC_ADD(reg, id, x <= 3 ? 1 : 2); }\n",
         None),
    "src/ops/good_batch.cc":
        ("void f() {\n"
         "  // a comment saying idx->Search(q, 3) is fine\n"
         "  auto s1 = idx->SearchBatch(reqs, resps);\n"
         "  auto s2 = idx.KnnBatch(reqs, resps);\n"
         "  auto s3 = idx->SearchWithDistances(q, 3);\n"
         "}\n", None),
    "src/index/good_scalar_hook.cc":
        ("void f() { auto hits = idx->Search(q, 3); }\n", None),
    "src/ops/good_metric_name.cc":
        ("void f(const std::string& prefix) {\n"
         '  auto id = reg->Counter("serving.accepted");\n'
         '  // dynamic family: no literal right after the paren, exempt\n'
         '  auto h = reg->Histogram(prefix + ".candidates");\n'
         "}\n", None),
    "src/observability/metric_names.h":
        ("#pragma once\n"
         "inline constexpr char kServingAccepted[] = "
         '"serving.accepted";\n', None),
    "src/code/binary_code.h": ("#pragma once\n", None),
    "src/mapreduce/job.h": ("#pragma once\n", None),
    "src/storage/file_io.h": ("#pragma once\n", None),
}


def _kernel_tu_self_test(failures: list):
    """Synthetic-fixture checks for [kernel-tu]: seeded violations (a
    dropped flag; a silently orphaned TU) must fire, the blessed
    configurations (flags present; tier gated off via cache) must not."""

    def run_scenario(compile_entries, cache_lines):
        with tempfile.TemporaryDirectory(
                prefix="hamming-lint-kerneltu-") as tmp:
            for tu in KERNEL_TU_FLAGS:
                path = os.path.join(tmp, tu)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write("// fixture\n")
            build = os.path.join(tmp, "build")
            os.makedirs(build)
            entries = [
                {"directory": build,
                 "command": f"/usr/bin/c++ {flags} -c {os.path.join(tmp, tu)}",
                 "file": os.path.join(tmp, tu)}
                for tu, flags in compile_entries.items()]
            with open(os.path.join(build, "compile_commands.json"), "w",
                      encoding="utf-8") as f:
                json.dump(entries, f)
            with open(os.path.join(build, "CMakeCache.txt"), "w",
                      encoding="utf-8") as f:
                f.write("\n".join(cache_lines) + "\n")
            violations = []
            check_kernel_tus(tmp, build, violations)
            return violations

    avx2 = "src/kernels/hamming_kernels_avx2.cc"
    avx512 = "src/kernels/hamming_kernels_avx512.cc"
    probes_on = ["HAMMING_CXX_HAS_MAVX2:INTERNAL=1",
                 "HAMMING_CXX_HAS_MAVX512F:INTERNAL=1",
                 "HAMMING_CXX_HAS_MAVX512BW:INTERNAL=1",
                 "HAMMING_CXX_HAS_MAVX512VPOPCNTDQ:INTERNAL=1"]
    good = {avx2: "-O2 -mavx2",
            avx512: "-O2 -mavx512f -mavx512bw -mavx512vpopcntdq"}

    # Clean: both TUs compiled with their full flag sets.
    hits = run_scenario(good, probes_on + ["HAMMING_AVX512:STRING=AUTO"])
    for v in hits:
        failures.append(f"false positive: {v}")

    # Clean: AVX-512 tier explicitly OFF, TU absent from the build.
    hits = run_scenario({avx2: "-O2 -mavx2"},
                        probes_on + ["HAMMING_AVX512:STRING=OFF"])
    for v in hits:
        failures.append(f"false positive (tier off): {v}")

    # Clean: failed probe gates the TU out.
    hits = run_scenario(
        {avx2: "-O2 -mavx2"},
        ["HAMMING_CXX_HAS_MAVX2:INTERNAL=1",
         "HAMMING_CXX_HAS_MAVX512F:INTERNAL=0",
         "HAMMING_AVX512:STRING=AUTO"])
    for v in hits:
        failures.append(f"false positive (failed probe): {v}")

    # Seeded: the AVX2 TU lost its -mavx2 flag.
    hits = run_scenario(
        {avx2: "-O2",
         avx512: "-O2 -mavx512f -mavx512bw -mavx512vpopcntdq"},
        probes_on + ["HAMMING_AVX512:STRING=AUTO"])
    if not any(v.rule == "kernel-tu" and v.path == avx2 for v in hits):
        failures.append(
            "seeded violation NOT detected: dropped -mavx2 flag should "
            "fire [kernel-tu]")

    # Seeded: AVX-512 TU silently absent although every probe passed.
    hits = run_scenario({avx2: "-O2 -mavx2"},
                        probes_on + ["HAMMING_AVX512:STRING=AUTO"])
    if not any(v.rule == "kernel-tu" and v.path == avx512 for v in hits):
        failures.append(
            "seeded violation NOT detected: orphaned AVX-512 TU should "
            "fire [kernel-tu]")


def self_test() -> int:
    failures = []
    _kernel_tu_self_test(failures)
    with tempfile.TemporaryDirectory(prefix="hamming-lint-selftest-") as tmp:
        for relpath, (contents, _) in FIXTURES.items():
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        violations = run_checks(tmp, build_dir=None)
        by_file = {}
        for v in violations:
            by_file.setdefault(v.path.replace(os.sep, "/"), []).append(v)
        for relpath, (_, expected_rule) in sorted(FIXTURES.items()):
            hits = by_file.pop(relpath, [])
            if expected_rule is None:
                for v in hits:
                    failures.append(f"false positive: {v}")
            elif not any(v.rule == expected_rule for v in hits):
                failures.append(
                    f"seeded violation NOT detected: {relpath} should "
                    f"fire [{expected_rule}]")
        for relpath, hits in sorted(by_file.items()):
            for v in hits:
                failures.append(f"unexpected violation: {v}")
    if failures:
        print("lint --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("lint --self-test passed: every seeded violation detected, "
          "no false positives")
    return 0


# --------------------------------------------------------------------------


def run_checks(root: str, build_dir) -> list:
    violations = []
    check_layering(root, violations)
    check_raw_sync(root, violations)
    check_batch_first(root, violations)
    check_metric_args(root, violations)
    check_metric_names(root, violations)
    if build_dir:
        check_build_coverage(root, build_dir, violations)
        check_kernel_tus(root, build_dir, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up "
                        "from this script)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json "
                        "(default: <root>/build)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against seeded-violation "
                        "fixtures and verify every rule fires")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint: error: {root} has no src/ directory", file=sys.stderr)
        return 2
    build_dir = args.build_dir or os.path.join(root, "build")

    violations = run_checks(root, build_dir)
    for v in violations:
        print(v)
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

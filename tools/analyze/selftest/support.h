// Shared declarations for the analyzer self-test fixtures.  These
// files are parsed by tools/analyze, never compiled; the primitives
// mirror src/common/sync.h closely enough for event extraction.
#pragma once

#include <functional>

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

struct ReleasableMutexLock {
  explicit ReleasableMutexLock(Mutex* mu);
  void Release();
};

struct CondVar {
  void Wait(Mutex* mu);
  void SignalAll();
};

struct Status {
  bool ok() const;
};

using StatusOr = Status;

Status MightFail();
StatusOr AliasedFail();
void SleepFor(int millis);

struct Snapshot {
  int Value() const;
};
using SnapshotPtr = Snapshot*;

struct Publisher {
  SnapshotPtr Pin() {
    MutexLock lock(&mu_);
    return snap_;
  }
  Mutex mu_;
  SnapshotPtr snap_;
};

// Named lock holders; the self-test spec maps LockX::mu_ identities.
struct LockA {
  Mutex mu_;
};
struct LockB {
  Mutex mu_;
};
struct LockC {
  Mutex mu_;
};
struct LeafLock {
  Mutex mu_;
};

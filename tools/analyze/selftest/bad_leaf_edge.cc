// Negative fixture: a leaf lock acquires another lock while held.
#include "support.h"

struct LeafAbuser {
  void Bad() {
    MutexLock l1(&leaf_.mu_);
    MutexLock l2(&c_.mu_);
  }
  LeafLock leaf_;
  LockC c_;
};

// Negative fixture: the spec declares a -> b, this path acquires
// b -> a.  Expected: an undeclared-edge finding here plus a cycle
// finding against the spec.
#include "support.h"

struct CycleMaker {
  void Backwards() {
    MutexLock lb(&b_.mu_);
    MutexLock la(&a_.mu_);
  }
  LockA a_;
  LockB b_;
};

// Clean fixture: sequential scoped locks never overlap, so no order
// edge exists between them.
#include "support.h"

struct SeqHolder {
  void Sequential() {
    {
      MutexLock lb(&b_.mu_);
    }
    {
      MutexLock lc(&c_.mu_);
    }
  }
  LockB b_;
  LockC c_;
};

// Negative fixture: a Status-returning call used as a bare expression
// statement.
#include "support.h"

void PlainDiscard() {
  MightFail();
}

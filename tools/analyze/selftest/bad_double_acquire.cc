// Negative fixture: the same non-recursive mutex acquired twice on one
// path (self-deadlock).
#include "support.h"

struct Doubler {
  void Twice() {
    MutexLock l1(&mu_);
    MutexLock l2(&mu_);
  }
  Mutex mu_;
};

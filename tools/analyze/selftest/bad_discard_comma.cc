// Negative fixture: Status discarded in the right-hand side of a
// comma expression.
#include "support.h"

void CommaDiscard(int* counter) {
  ++*counter, MightFail();
}

// Negative fixture: a non-pin_safe mutex acquired while an epoch
// snapshot is pinned.
#include "support.h"

struct PinLocker {
  int Bad() {
    SnapshotPtr snap = pub_.Pin();
    MutexLock lc(&c_.mu_);
    return snap->Value();
  }
  Publisher pub_;
  LockC c_;
};

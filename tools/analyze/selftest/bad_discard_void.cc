// Negative fixture: (void)-cast discard without a justifying comment.
#include "support.h"

void VoidDiscard() {
  int x = 0;
  x = x + 1;
  (void)MightFail();
}

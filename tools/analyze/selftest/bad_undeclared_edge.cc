// Negative fixture: a -> c skips the declared a -> b -> c chain; the
// direct edge is not in the spec and must be flagged.
#include "support.h"

struct Skipper {
  void SkipLevel() {
    MutexLock la(&a_.mu_);
    MutexLock lc(&c_.mu_);
  }
  LockA a_;
  LockC c_;
};

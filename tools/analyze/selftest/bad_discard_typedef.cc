// Negative fixture: Status discarded through a return-type alias
// (using StatusOr = Status in support.h).
#include "support.h"

void TypedefDiscard() {
  AliasedFail();
}

// Negative fixture: Status discarded through both arms of a ternary —
// the regex linter this pass replaces could not see this.
#include "support.h"

void TernaryDiscard(bool flaky) {
  flaky ? MightFail() : MightFail();
}

// Negative fixture: a user callback invoked while an epoch snapshot is
// pinned (user code can block or re-enter the index).
#include "support.h"

struct PinCaller {
  void Walk() {
    SnapshotPtr snap = pub_.Pin();
    visit_cb_();
  }
  Publisher pub_;
  std::function<void()> visit_cb_;
};

// Clean fixture: nesting that follows the declared a -> b -> c order.
#include "support.h"

struct DeclaredNester {
  void NestOuter() {
    MutexLock la(&a_.mu_);
    MutexLock lb(&b_.mu_);
  }
  void NestInner() {
    MutexLock lb(&b_.mu_);
    MutexLock lc(&c_.mu_);
  }
  LockA a_;
  LockB b_;
  LockC c_;
};

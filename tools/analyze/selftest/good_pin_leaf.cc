// Clean fixture: only pin_safe locks under a pinned snapshot, plus a
// transient Pin()->... chain confined to one statement.
#include "support.h"

struct PinReader {
  int Read() {
    SnapshotPtr snap = pub_.Pin();
    MutexLock l(&stats_.mu_);
    return snap->Value();
  }
  int ReadOnce() {
    return pub_.Pin()->Value();
  }
  void AfterTransient() {
    int v = pub_.Pin()->Value();
    SleepFor(v);
  }
  Publisher pub_;
  LeafLock stats_;
};

// Negative fixture: a user-supplied std::function invoked while a lock
// without callbacks_allowed is held.
#include "support.h"

struct Firer {
  void Fire() {
    MutexLock lock(&mu_);
    done_cb_();
  }
  Mutex mu_;
  std::function<void()> done_cb_;
};

// Negative fixture: a CondVar wait while an epoch snapshot is pinned
// stalls reclamation for the wait duration.
#include "support.h"

struct PinWaiter {
  void Stall() {
    SnapshotPtr snap = pub_.Pin();
    MutexLock l(&mu_);
    cv_.Wait(&mu_);
  }
  Publisher pub_;
  Mutex mu_;
  CondVar cv_;
};

// Clean fixture: handled Status, a justified (void) discard, and a
// value-consuming ternary condition.
#include "support.h"

bool GoodDiscard() {
  Status st = MightFail();
  if (!st.ok()) {
    return false;
  }
  // best-effort second attempt; failure is benign here
  (void)MightFail();
  return MightFail().ok() ? true : false;
}

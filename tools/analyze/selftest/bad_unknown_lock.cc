// Negative fixture: a lock that participates in nesting but has no
// [[lock]] entry in the spec.
#include "support.h"

struct Mystery {
  Mutex hidden_mu_;
};

struct UsesMystery {
  void Nest() {
    MutexLock la(&a_.mu_);
    MutexLock lm(&m_.hidden_mu_);
  }
  LockA a_;
  Mystery m_;
};

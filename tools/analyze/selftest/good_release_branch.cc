// Clean fixture: branch-local releases.  A Release()/Unlock() in a
// deeper scope is temporary (the lock is live again after that scope),
// and the unlock-work-relock loop runs its work with no lock held.
#include "support.h"

struct Releaser {
  void Run() {
    ReleasableMutexLock lock(&mu_);
    if (Flaky()) {
      lock.Release();
      return;
    }
    count_ = count_ + 1;
  }
  bool Flaky();
  Mutex mu_;
  int count_;
};

struct LoopWorker {
  void Drain() {
    mu_.Lock();
    while (HasWork()) {
      mu_.Unlock();
      visit_cb_();
      mu_.Lock();
    }
    mu_.Unlock();
  }
  bool HasWork();
  Mutex mu_;
  std::function<void()> visit_cb_;
};

// Negative fixture: a declared blocking call while an epoch snapshot
// is pinned.
#include "support.h"

struct PinSleeper {
  void Nap() {
    SnapshotPtr snap = pub_.Pin();
    SleepFor(5);
  }
  Publisher pub_;
};

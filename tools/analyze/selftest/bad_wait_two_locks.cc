// Negative fixture: a CondVar wait releases only its own mutex; the
// second held lock blocks every peer for the wait duration.
#include "support.h"

struct TwoLockWaiter {
  void WaitBoth() {
    MutexLock la(&a_.mu_);
    MutexLock lm(&mu_);
    cv_.Wait(&mu_);
  }
  LockA a_;
  Mutex mu_;
  CondVar cv_;
};

#!/usr/bin/env python3
"""Semantic concurrency analyzer for the hamming-mr tree.

Runs three AST-level passes over the translation units listed in the
build's compile_commands.json (python3 stdlib only; see frontend.py for
the C++ micro-frontend and the optional libclang enrichment path):

  [lock-order]   Extracts every mutex acquisition (MutexLock /
                 ReleasableMutexLock RAII sites, manual Lock/Unlock,
                 HAMMING_REQUIRES seeds) and builds an inter-procedural
                 acquisition graph.  Every nesting edge between two
                 declared locks must appear in lock_order.toml; the
                 combined declared+observed graph must be acyclic; locks
                 participating in nesting must be declared; leaf locks
                 admit no outgoing edges; user callbacks must not run
                 under a lock unless the spec grants callbacks_allowed;
                 a CondVar wait may not hold a second mutex.
  [epoch-pin]    While an EpochPublisher snapshot is pinned (Pin() ..
                 scope end, or the statement for transient Pin()->...
                 chains), the path may not acquire a non-pin_safe mutex,
                 block (CondVar wait / SleepFor / join / WaitIdle), or
                 call through a user-supplied callback — transitively
                 through the call graph.
  [discard]      AST-accurate Status/Result discard checks replacing the
                 lint.py regex rule: bare expression-statement discards
                 (including through ternary and comma expressions and
                 return-type typedefs), plus the (void)-cast
                 justification rule and the [[nodiscard]] attribute
                 presence check on Status/Result.

Findings not fixed immediately live in baseline.json with a per-entry
expiry date; expired or stale entries fail the run, so the baseline only
ratchets toward zero.  `--self-test` seeds every pass with the negative
fixtures under selftest/ and fails loudly if any pass stops firing.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import datetime
import fnmatch
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import frontend  # noqa: E402
from frontend import Program, parse_file  # noqa: E402

try:
    import tomllib
except ImportError:  # pragma: no cover - python < 3.11
    tomllib = None


# --------------------------------------------------------------------------
# Spec
# --------------------------------------------------------------------------


class LockSpec:
    def __init__(self, d):
        self.name = d["name"]
        self.matches = set(d.get("matches", []))
        self.leaf = bool(d.get("leaf", False))
        self.pin_safe = bool(d.get("pin_safe", False))
        self.callbacks_allowed = bool(d.get("callbacks_allowed", False))
        self.why = d.get("why", "")


class Spec:
    def __init__(self, data, path):
        self.path = path
        cfg = data.get("config", {})
        self.roots = cfg.get("roots", ["src"])
        self.discard_roots = cfg.get("discard_roots", self.roots)
        self.skip = cfg.get("skip", [])
        self.pin_methods = set(cfg.get("pin_methods", ["Pin"]))
        self.callback_types = set(cfg.get("callback_types", ["function"]))
        self.callback_methods = set(cfg.get("callback_methods", []))
        self.callback_name_patterns = [
            re.compile(p) for p in cfg.get("callback_name_patterns", [])]
        self.blocking_calls = set(cfg.get("blocking_calls", []))
        self.nodiscard_headers = cfg.get("nodiscard_headers", [])
        self.locks = [LockSpec(d) for d in data.get("lock", [])]
        self.orders = [(d["before"], d["after"], d.get("why", ""))
                       for d in data.get("order", [])]
        self._by_identity = {}
        self._by_name = {}
        for lk in self.locks:
            self._by_name[lk.name] = lk
            for m in lk.matches:
                self._by_identity[m] = lk
        self.declared_edges = {(b, a) for b, a, _ in self.orders}
        self.validate()

    def validate(self):
        names = set()
        for lk in self.locks:
            if lk.name in names:
                raise SpecError(f"duplicate lock name '{lk.name}'")
            names.add(lk.name)
        for b, a, _ in self.orders:
            for n in (b, a):
                if n not in self._by_name:
                    raise SpecError(
                        f"[[order]] references unknown lock '{n}'")
            if self._by_name[b].leaf:
                raise SpecError(
                    f"lock '{b}' is declared leaf but has an outgoing "
                    f"[[order]] edge to '{a}' — leaves admit no edges")
        # declared graph must itself be acyclic
        cyc = find_cycle(self.declared_edges)
        if cyc:
            raise SpecError("declared lock order contains a cycle: " +
                            " -> ".join(cyc))

    def lock_for(self, identity):
        return self._by_identity.get(identity)

    def name_for(self, identity):
        lk = self._by_identity.get(identity)
        return lk.name if lk else None

    def is_callback_call(self, ev, var_core):
        if ev.kind not in ("invoke", "call"):
            return False
        # a local/param/member of functional type invoked directly
        if var_core and (var_core in self.callback_types):
            return True
        if ev.kind == "invoke":
            return any(p.search(ev.name)
                       for p in self.callback_name_patterns)
        if ev.name in self.callback_methods:
            return True
        # unreceivered call whose NAME matches a callback pattern
        # (covers members the type resolver could not see)
        if ev.recv is None:
            return any(p.search(ev.name)
                       for p in self.callback_name_patterns)
        return False


class SpecError(Exception):
    pass


def load_spec(path):
    if tomllib is None:
        raise SpecError("python3 tomllib unavailable (need >= 3.11)")
    with open(path, "rb") as f:
        data = tomllib.load(f)
    return Spec(data, path)


def find_cycle(edges):
    """Returns a cycle as a node list (closed) or None."""
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    parent = {}

    def dfs(u):
        color[u] = GRAY
        for v in sorted(adj.get(u, ())):
            if color.get(v, WHITE) == WHITE:
                parent[v] = u
                r = dfs(v)
                if r:
                    return r
            elif color.get(v) == GRAY:
                path = [v, u]
                w = u
                while w != v and w in parent:
                    w = parent[w]
                    path.append(w)
                path.reverse()
                return path
        color[u] = BLACK
        return None

    for u in sorted(adj):
        if color.get(u, WHITE) == WHITE:
            r = dfs(u)
            if r:
                return r
    return None


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


class Finding:
    def __init__(self, rule, path, line, message, fingerprint):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.fingerprint = fingerprint
        self.baselined = False

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Function summaries (transitive)
# --------------------------------------------------------------------------


class Summary:
    __slots__ = ("acquires", "waits", "callbacks", "blocking")

    def __init__(self):
        self.acquires = set()
        self.waits = False
        self.callbacks = False
        self.blocking = False

    def union(self, other):
        before = (len(self.acquires), self.waits, self.callbacks,
                  self.blocking)
        self.acquires |= other.acquires
        self.waits |= other.waits
        self.callbacks |= other.callbacks
        self.blocking |= other.blocking
        return before != (len(self.acquires), self.waits,
                          self.callbacks, self.blocking)


class Analysis:
    """Shared resolution state for one analyzer run."""

    def __init__(self, program: Program, spec: Spec):
        self.prog = program
        self.spec = spec
        self.call_edges = {}   # fn -> [(ev, [callees])]
        self.summaries = {}    # fn -> Summary
        self._resolve_all()
        self._fixpoint()

    def _resolve_all(self):
        for fn in self.prog.functions:
            if not fn.has_body:
                continue
            edges = []
            for ev in fn.events:
                if ev.kind == "call":
                    edges.append((ev, self.prog.resolve_callees(fn, ev)))
                elif ev.kind in ("acquire", "wait", "release") and \
                        ev.lock and not isinstance(ev.lock, str):
                    ev.lock = self.prog.lock_identity(fn, ev.lock)
            self.call_edges[fn] = edges

    def _fixpoint(self):
        spec = self.spec
        for fn in self.prog.functions:
            if not fn.has_body:
                continue
            s = Summary()
            for ev in fn.events:
                if ev.kind == "acquire":
                    s.acquires.add(ev.lock)
                elif ev.kind == "wait":
                    s.waits = True
                elif ev.kind in ("invoke", "call"):
                    if spec.is_callback_call(
                            ev, self.prog.var_core(fn, ev.name)):
                        s.callbacks = True
                    if ev.kind == "call" and \
                            ev.name in spec.blocking_calls:
                        s.blocking = True
            self.summaries[fn] = s
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for fn, edges in self.call_edges.items():
                s = self.summaries[fn]
                for _, callees in edges:
                    for c in callees:
                        cs = self.summaries.get(c)
                        if cs is not None and s.union(cs):
                            changed = True

    def callees(self, fn, ev):
        for e, cal in self.call_edges.get(fn, ()):
            if e is ev:
                return cal
        return []


# --------------------------------------------------------------------------
# Pass 1: lock-order
# --------------------------------------------------------------------------


def _in_scope(path, roots):
    rp = path.replace(os.sep, "/")
    return any(rp.startswith(r.rstrip("/") + "/") or rp == r
               for r in roots)


def run_lock_order(an: Analysis, scope_roots, findings: list):
    prog, spec = an.prog, an.spec
    observed = {}   # (from_id, to_id) -> {path: (line, note)}
    for fn in prog.functions:
        if not fn.has_body or not _in_scope(fn.path, scope_roots):
            continue
        if fn.no_tsa:
            continue  # explicit opt-out, same meaning as Clang's
        _simulate(an, fn, observed, findings)
    # Map identities to spec names; undeclared participants fail.
    # One finding per (edge, file) so every offending TU is named.
    mapped = set()
    for (a, b), sites in sorted(observed.items()):
        la, lb = spec.name_for(a), spec.name_for(b)
        key = f"edge:{a}->{b}"
        for path, (line, note) in sorted(sites.items()):
            if la is None or lb is None:
                missing = a if la is None else b
                findings.append(Finding(
                    "lock-order", path, line,
                    f"lock '{missing}' participates in nesting "
                    f"({a} -> {b}{note}) but has no [[lock]] entry in "
                    f"{os.path.basename(spec.path)}",
                    f"lock-order:{path}:{key}"))
                continue
            if spec._by_name[la].leaf:
                findings.append(Finding(
                    "lock-order", path, line,
                    f"leaf lock '{la}' ({a}) acquires '{lb}' "
                    f"({b}){note} — leaves admit no nested "
                    "acquisitions",
                    f"lock-order:{path}:leaf:{la}->{lb}"))
                continue
            if la != lb:
                mapped.add((la, lb))  # undeclared edges join the cycle
            if (la, lb) not in spec.declared_edges and la != lb:
                findings.append(Finding(
                    "lock-order", path, line,
                    f"undeclared lock-order edge {la} -> {lb} "
                    f"({a} -> {b}{note}); declare it with [[order]] in "
                    f"{os.path.basename(spec.path)} or restructure",
                    f"lock-order:{path}:{key}"))
    cyc = find_cycle(spec.declared_edges | mapped)
    if cyc:
        findings.append(Finding(
            "lock-order", os.path.basename(spec.path), 1,
            "lock-order graph (declared + observed) contains a cycle: "
            + " -> ".join(cyc),
            "lock-order:spec:cycle:" + "->".join(cyc)))


def _simulate(an: Analysis, fn, observed, findings):
    prog, spec = an.prog, an.spec
    held = []        # [{"id", "depth"}]
    suspended = []   # [(entry, release_depth)]

    def seed_requires():
        for arg in fn.requires_locks:
            toks = re.findall(r"\w+|->|\.|::|!", arg)
            if toks and toks[0] == "!":
                continue  # EXCLUDES-style negation
            ident = prog.lock_identity(fn, toks)
            held.append({"id": ident, "depth": 0, "var": None,
                         "style": "required"})

    seed_requires()
    for ev in fn.events:
        if ev.kind == "scope_close":
            d = ev.depth
            held[:] = [e for e in held if e["depth"] < d]
            keep = []
            for e, rd in suspended:
                if rd >= d:
                    if e["depth"] < d:
                        held.append(e)
                else:
                    keep.append((e, rd))
            suspended[:] = keep
            continue
        if ev.kind == "acquire":
            ident = ev.lock
            # manual re-acquire of a branch-released lock
            for k, (e, rd) in enumerate(suspended):
                if e["id"] == ident:
                    suspended.pop(k)
                    held.append(e)
                    break
            else:
                for e in held:
                    if e["id"] == ident:
                        findings.append(Finding(
                            "lock-order", fn.path, ev.line,
                            f"'{ident}' acquired while already held in "
                            f"{fn.qname} (self-deadlock on a "
                            "non-recursive mutex)",
                            f"lock-order:{fn.path}:double:{ident}:"
                            f"{fn.qname}"))
                        break
                else:
                    for e in held:
                        observed.setdefault(
                            (e["id"], ident), {}).setdefault(
                            fn.path, (ev.line, f" in {fn.qname}"))
                    held.append({"id": ident, "depth": ev.depth,
                                 "var": ev.var, "style": ev.style})
            continue
        if ev.kind == "release":
            target = None
            for e in held:
                if (ev.var is not None and e.get("var") == ev.var) or \
                        (ev.lock is not None and e["id"] == ev.lock):
                    target = e
                    break
            if target is None:
                continue
            held.remove(target)
            if ev.depth > target["depth"]:
                suspended.append((target, ev.depth))
            continue
        if ev.kind == "wait":
            waited = ev.lock if isinstance(ev.lock, str) else \
                (prog.lock_identity(fn, ev.lock) if ev.lock else None)
            others = [e["id"] for e in held if e["id"] != waited]
            if others:
                findings.append(Finding(
                    "lock-order", fn.path, ev.line,
                    f"CondVar wait on '{waited}' while also holding "
                    f"{', '.join(others)} in {fn.qname} — the held "
                    "lock blocks every peer for the wait duration",
                    f"lock-order:{fn.path}:wait:{fn.qname}:"
                    f"{','.join(others)}"))
            continue
        if ev.kind == "invoke" or ev.kind == "call":
            var_core = prog.var_core(fn, ev.name)
            if spec.is_callback_call(ev, var_core) and held:
                for e in held:
                    lk = spec.lock_for(e["id"])
                    if lk is not None and lk.callbacks_allowed:
                        continue
                    findings.append(Finding(
                        "lock-order", fn.path, ev.line,
                        f"user callback '{ev.name}' invoked while "
                        f"holding '{e['id']}' in {fn.qname} — callbacks "
                        "under a lock need callbacks_allowed in the "
                        "spec or a restructure",
                        f"lock-order:{fn.path}:callback:{e['id']}:"
                        f"{fn.qname}"))
            if ev.kind == "call" and held:
                for callee in an.callees(fn, ev):
                    cs = an.summaries.get(callee)
                    if cs is None:
                        continue
                    for acq in cs.acquires:
                        for e in held:
                            if e["id"] != acq:
                                observed.setdefault(
                                    (e["id"], acq), {}).setdefault(
                                    fn.path,
                                    (ev.line,
                                     f" via {callee.qname} in "
                                     f"{fn.qname}"))


# --------------------------------------------------------------------------
# Pass 2: epoch-pin
# --------------------------------------------------------------------------


def run_epoch_pin(an: Analysis, scope_roots, findings: list):
    prog, spec = an.prog, an.spec
    for fn in prog.functions:
        if not fn.has_body or not _in_scope(fn.path, scope_roots):
            continue
        pins = []   # {"depth", "stmt" (transient) or None, "line"}
        for ev in fn.events:
            if ev.kind == "scope_close":
                pins = [p for p in pins
                        if p["stmt"] is None and p["depth"] < ev.depth
                        or p["stmt"] is not None]
            pins = [p for p in pins
                    if p["stmt"] is None or p["stmt"] == ev.stmt]
            active = bool(pins)
            if active and ev.kind == "acquire":
                lk = spec.lock_for(ev.lock)
                if lk is None or not lk.pin_safe:
                    findings.append(Finding(
                        "epoch-pin", fn.path, ev.line,
                        f"'{ev.lock}' acquired while an epoch snapshot "
                        f"is pinned in {fn.qname} (pinned at line "
                        f"{pins[0]['line']}) — only pin_safe locks may "
                        "be taken under a pin",
                        f"epoch-pin:{fn.path}:lock:{ev.lock}:"
                        f"{fn.qname}"))
            elif active and ev.kind == "wait":
                findings.append(Finding(
                    "epoch-pin", fn.path, ev.line,
                    f"CondVar wait while an epoch snapshot is pinned in "
                    f"{fn.qname} — a blocked reader pins its epoch and "
                    "stalls reclamation",
                    f"epoch-pin:{fn.path}:wait:{fn.qname}"))
            elif ev.kind in ("invoke", "call"):
                var_core = prog.var_core(fn, ev.name)
                is_cb = spec.is_callback_call(ev, var_core)
                if active and is_cb:
                    findings.append(Finding(
                        "epoch-pin", fn.path, ev.line,
                        f"user callback '{ev.name}' invoked while an "
                        f"epoch snapshot is pinned in {fn.qname} — "
                        "user code can block or re-enter the index",
                        f"epoch-pin:{fn.path}:callback:{ev.name}:"
                        f"{fn.qname}"))
                elif active and ev.kind == "call":
                    if ev.name in spec.blocking_calls:
                        findings.append(Finding(
                            "epoch-pin", fn.path, ev.line,
                            f"blocking call '{ev.name}' while an epoch "
                            f"snapshot is pinned in {fn.qname}",
                            f"epoch-pin:{fn.path}:block:{ev.name}:"
                            f"{fn.qname}"))
                    else:
                        for callee in an.callees(fn, ev):
                            cs = an.summaries.get(callee)
                            if cs is None:
                                continue
                            bad_acq = sorted(
                                a for a in cs.acquires
                                if not (spec.lock_for(a) and
                                        spec.lock_for(a).pin_safe))
                            if bad_acq:
                                findings.append(Finding(
                                    "epoch-pin", fn.path, ev.line,
                                    f"call to {callee.qname} while "
                                    f"pinned in {fn.qname} acquires "
                                    f"non-pin_safe lock(s): "
                                    f"{', '.join(bad_acq)}",
                                    f"epoch-pin:{fn.path}:call-lock:"
                                    f"{callee.qname}:{fn.qname}"))
                            elif cs.waits or cs.blocking:
                                findings.append(Finding(
                                    "epoch-pin", fn.path, ev.line,
                                    f"call to {callee.qname} while "
                                    f"pinned in {fn.qname} can block "
                                    "(transitive CondVar wait or "
                                    "sleep)",
                                    f"epoch-pin:{fn.path}:call-block:"
                                    f"{callee.qname}:{fn.qname}"))
                            elif cs.callbacks:
                                findings.append(Finding(
                                    "epoch-pin", fn.path, ev.line,
                                    f"call to {callee.qname} while "
                                    f"pinned in {fn.qname} runs a "
                                    "user callback (transitively)",
                                    f"epoch-pin:{fn.path}:call-cb:"
                                    f"{callee.qname}:{fn.qname}"))
                # register new pin AFTER checking the pin call itself.
                # The pin is durable (lives to scope end) only when the
                # assigned variable actually holds the snapshot; a
                # Pin()->... chain or `int v = Pin()->Value()` pins only
                # for the statement.
                if ev.kind == "call" and ev.name in spec.pin_methods:
                    durable = False
                    if ev.assigned:
                        acore = prog.var_core(fn, ev.assigned)
                        pcore = prog.call_return_core(fn, ev.name)
                        durable = acore in (None, "auto") or \
                            pcore is None or acore == pcore
                    if durable:
                        pins.append({"depth": ev.depth, "stmt": None,
                                     "line": ev.line})
                    else:
                        pins.append({"depth": ev.depth, "stmt": ev.stmt,
                                     "line": ev.line})


# --------------------------------------------------------------------------
# Pass 3: discard
# --------------------------------------------------------------------------


def run_discard(an: Analysis, scope_roots, root, findings: list):
    prog, spec = an.prog, an.spec
    for hdr, cls in spec.nodiscard_headers:
        path = os.path.join(root, hdr)
        if not os.path.isfile(path):
            findings.append(Finding(
                "discard", hdr, 1, "header is missing",
                f"discard:{hdr}:missing"))
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        if not re.search(r"class\s*\[\[nodiscard\]\]\s*" + cls, text):
            findings.append(Finding(
                "discard", hdr, 1,
                f"class {cls} must be declared [[nodiscard]]",
                f"discard:{hdr}:attr:{cls}"))
    for fn in prog.functions:
        if not fn.has_body or not _in_scope(fn.path, scope_roots):
            continue
        fir = prog.files.get(fn.path)
        comment_lines = fir.comment_lines if fir else set()
        void_seq = 0
        prev_ok_line = -10
        for st in fn.statements:
            if st.macro:
                continue
            if st.void_cast:
                void_seq += 1
                window = range(st.line - 2, st.line + 1)
                if any(w in comment_lines for w in window) or \
                        prev_ok_line == st.line - 1:
                    prev_ok_line = st.line
                    continue
                findings.append(Finding(
                    "discard", fn.path, st.line,
                    f"(void)-discarded call result in {fn.qname} "
                    "without a justifying comment on the same line or "
                    "the two lines above",
                    f"discard:{fn.path}:void:{fn.qname}:{void_seq}"))
                continue
            for name, recv in st.segments:
                cands = _discard_candidates(prog, fn, name, recv)
                if cands and all(c.returns_status for c in cands):
                    findings.append(Finding(
                        "discard", fn.path, st.line,
                        f"result of '{name}' (returns Status/Result) "
                        f"discarded in {fn.qname} — handle it, or "
                        "(void)-cast with a justifying comment",
                        f"discard:{fn.path}:{fn.qname}:{name}"))


def _discard_candidates(prog, fn, name, recv):
    if name in prog.classes:
        return []  # constructor expression
    if recv and len(recv) >= 2 and recv[-1] == "::":
        return prog.method_index.get((recv[0], name), [])
    if recv:
        core = prog.chain_core(fn, recv)
        if core:
            out = []
            for c in prog.hierarchy(core):
                out.extend(prog.method_index.get((c, name), []))
            return out
        # unknown receiver: only trust a name that lives in one class
        cands = prog.name_index.get(name, [])
        if len({c.cls for c in cands}) == 1:
            return cands
        return []
    cands = []
    if fn.cls:
        for c in prog.hierarchy(fn.cls):
            cands.extend(prog.method_index.get((c, name), []))
    if cands:
        return cands
    free = [c for c in prog.name_index.get(name, []) if c.cls is None]
    if free:
        return free
    cands = prog.name_index.get(name, [])
    if len({c.cls for c in cands}) == 1:
        return cands
    return []


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------


def apply_baseline(findings, baseline_path, today=None):
    today = today or datetime.date.today()
    try:
        with open(baseline_path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError:
        return findings  # no baseline: nothing suppressed
    out = []
    entries = data.get("entries", [])
    used = set()
    by_fp = {}
    for e in entries:
        by_fp[e["fingerprint"]] = e
    for f in findings:
        e = by_fp.get(f.fingerprint)
        if e is None:
            out.append(f)
            continue
        used.add(e["fingerprint"])
        try:
            expires = datetime.date.fromisoformat(e["expires"])
        except (KeyError, ValueError):
            out.append(Finding(
                f.rule, f.path, f.line,
                f"baseline entry for '{f.fingerprint}' has no valid "
                "'expires' date", f.fingerprint + ":badexpiry"))
            continue
        if expires < today:
            out.append(Finding(
                f.rule, f.path, f.line,
                f"baseline entry expired {e['expires']}: {f.message} "
                "— fix it or re-justify with a new expiry",
                f.fingerprint))
        else:
            f.baselined = True
            out.append(f)
    for e in entries:
        if e["fingerprint"] not in used:
            out.append(Finding(
                "baseline", os.path.basename(baseline_path), 1,
                f"stale baseline entry '{e['fingerprint']}' matches no "
                "finding — remove it",
                "baseline:stale:" + e["fingerprint"]))
    return out


# --------------------------------------------------------------------------
# Program construction
# --------------------------------------------------------------------------


def build_program(root, files, spec, verbose=False):
    prog = Program()
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(fnmatch.fnmatch(rel, pat) or rel == pat
               for pat in spec.skip):
            continue
        try:
            ir = parse_file(path)
        except Exception as e:
            raise RuntimeError(f"frontend failed on {rel}: {e}") from e
        ir.path = rel
        for f in ir.functions:
            f.path = rel
        for c in ir.classes.values():
            c.path = rel
        prog.add_file(ir)
        if verbose:
            print(f"  parsed {rel}: {len(ir.functions)} functions, "
                  f"{len(ir.classes)} classes")
    prog.link()
    return prog


def collect_files(root, build_dir, spec):
    cc_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(cc_path):
        raise RuntimeError(
            f"{cc_path} not found — configure the build first "
            "(cmake -B build -S .); CMAKE_EXPORT_COMPILE_COMMANDS is "
            "forced on by the root CMakeLists")
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    roots = set(spec.roots) | set(spec.discard_roots)
    files = set()
    for e in entries:
        path = os.path.realpath(e["file"])
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if rel.startswith(".."):
            continue
        if any(rel.startswith(r.rstrip("/") + "/") for r in roots):
            files.add(path)
    # headers are not TUs; pull in every header under the scoped roots
    for r in roots:
        base = os.path.join(root, r)
        for dirpath, _, names in os.walk(base):
            for n in names:
                if n.endswith(".h"):
                    files.add(os.path.realpath(
                        os.path.join(dirpath, n)))
    return sorted(files), cc_path


def run_passes(prog, spec, root):
    an = Analysis(prog, spec)
    findings = []
    run_lock_order(an, spec.roots, findings)
    run_epoch_pin(an, spec.roots, findings)
    run_discard(an, spec.discard_roots, root, findings)
    return an, findings


# --------------------------------------------------------------------------
# Debug helpers
# --------------------------------------------------------------------------


def dump_locks(an):
    sites = {}
    for fn in an.prog.functions:
        if not fn.has_body:
            continue
        for ev in fn.events:
            if ev.kind == "acquire":
                sites.setdefault(ev.lock, []).append(
                    f"{fn.path}:{ev.line} ({fn.qname})")
    for ident in sorted(sites):
        print(f"{ident}")
        for s in sites[ident][:4]:
            print(f"    {s}")


def dump_edges(an):
    observed = {}
    sink = []
    for fn in an.prog.functions:
        if not fn.has_body or not _in_scope(fn.path, an.spec.roots):
            continue
        if fn.no_tsa:
            continue
        _simulate(an, fn, observed, sink)
    for (a, b), sites in sorted(observed.items()):
        for path, (line, note) in sorted(sites.items()):
            print(f"{a} -> {b}    [{path}:{line}{note}]")


# --------------------------------------------------------------------------
# Self-test
# --------------------------------------------------------------------------


def self_test(tool_dir, repo_root):
    """Negative tests: every pass must fire on its seeded fixture and
    stay silent on the clean ones; the baseline machinery must suppress,
    expire, and flag staleness correctly."""
    import tempfile
    st_dir = os.path.join(tool_dir, "selftest")
    spec = load_spec(os.path.join(st_dir, "spec.toml"))
    files = sorted(
        os.path.join(st_dir, n) for n in os.listdir(st_dir)
        if n.endswith((".cc", ".h")))
    compiled_fixture = os.path.join(repo_root, "tests",
                                    "test_analyze_fixtures.cc")
    if os.path.isfile(compiled_fixture):
        files.append(compiled_fixture)
    # fixture files are analyzed under a pseudo 'src/' root so the
    # scoped passes treat them like production code
    prog = Program()
    for path in files:
        ir = parse_file(path)
        ir.path = "src/" + os.path.basename(path)
        for f in ir.functions:
            f.path = ir.path
        for c in ir.classes.values():
            c.path = ir.path
        prog.add_file(ir)
    prog.link()
    _, findings = run_passes(prog, spec, st_dir)

    expected = {
        # file -> list of (rule, message substring) that MUST fire
        "src/bad_lock_cycle.cc": [
            ("lock-order", "undeclared lock-order edge")],
        "spec.toml": [
            ("lock-order", "cycle")],
        "src/bad_undeclared_edge.cc": [
            ("lock-order", "undeclared lock-order edge")],
        "src/bad_unknown_lock.cc": [
            ("lock-order", "no [[lock]] entry")],
        "src/bad_leaf_edge.cc": [
            ("lock-order", "leaf lock")],
        "src/bad_double_acquire.cc": [
            ("lock-order", "already held")],
        "src/bad_callback_under_lock.cc": [
            ("lock-order", "user callback")],
        "src/bad_wait_two_locks.cc": [
            ("lock-order", "CondVar wait")],
        "src/bad_pin_then_lock.cc": [
            ("epoch-pin", "only pin_safe locks")],
        "src/bad_pin_callback.cc": [
            ("epoch-pin", "user callback")],
        "src/bad_pin_wait.cc": [
            ("epoch-pin", "CondVar wait while an epoch")],
        "src/bad_pin_blocking_call.cc": [
            ("epoch-pin", "block")],
        "src/bad_discard_plain.cc": [
            ("discard", "result of 'MightFail'")],
        "src/bad_discard_ternary.cc": [
            ("discard", "discarded")],
        "src/bad_discard_comma.cc": [
            ("discard", "discarded")],
        "src/bad_discard_typedef.cc": [
            ("discard", "discarded")],
        "src/bad_discard_void.cc": [
            ("discard", "justifying comment")],
        "src/test_analyze_fixtures.cc": [
            ("lock-order", "undeclared lock-order edge")],
    }
    clean = {
        "src/good_scoped_sequential.cc",
        "src/good_declared_edges.cc",
        "src/good_release_branch.cc",
        "src/good_pin_leaf.cc",
        "src/good_discard.cc",
        "src/support.h",
    }
    failures = []
    by_file = {}
    for f in findings:
        by_file.setdefault(f.path, []).append(f)
    for path, wants in expected.items():
        got = by_file.get(path, [])
        for rule, frag in wants:
            if not any(g.rule == rule and frag in g.message
                       for g in got):
                failures.append(
                    f"{path}: expected a [{rule}] finding containing "
                    f"'{frag}'; got: " +
                    ("; ".join(str(g) for g in got) or "nothing"))
    for path in clean:
        extra = [g for g in by_file.get(path, [])]
        if extra:
            failures.append(
                f"{path}: expected clean, got: " +
                "; ".join(str(g) for g in extra))
    for path in by_file:
        if path not in expected and path not in clean:
            failures.append(
                f"unexpected findings in unlisted fixture {path}: " +
                "; ".join(str(g) for g in by_file[path]))

    # --- a spec whose declared order is itself cyclic must be rejected
    try:
        load_spec(os.path.join(st_dir, "spec_cycle.toml"))
        failures.append("spec_cycle.toml: expected SpecError for the "
                        "declared a->b->a cycle, but the spec loaded")
    except SpecError as e:
        if "cycle" not in str(e):
            failures.append(
                f"spec_cycle.toml: SpecError does not mention the "
                f"cycle: {e}")

    # --- baseline machinery
    sample = next((f for f in findings if f.rule == "discard"), None)
    if sample is None:
        failures.append("no discard finding available to exercise the "
                        "baseline machinery")
    else:
        with tempfile.TemporaryDirectory(
                prefix="hamming-analyze-bl-") as tmp:
            def write_bl(entries):
                p = os.path.join(tmp, "baseline.json")
                with open(p, "w", encoding="utf-8") as f:
                    json.dump({"schema": 1, "entries": entries}, f)
                return p

            fresh = [Finding(sample.rule, sample.path, sample.line,
                             sample.message, sample.fingerprint)]
            r = apply_baseline(fresh, write_bl(
                [{"fingerprint": sample.fingerprint,
                  "expires": "2099-01-01", "reason": "selftest"}]))
            if not (len(r) == 1 and r[0].baselined):
                failures.append("baseline: unexpired entry did not "
                                "suppress its finding")
            fresh = [Finding(sample.rule, sample.path, sample.line,
                             sample.message, sample.fingerprint)]
            r = apply_baseline(fresh, write_bl(
                [{"fingerprint": sample.fingerprint,
                  "expires": "2000-01-01", "reason": "selftest"}]))
            if not any("expired" in f.message and not f.baselined
                       for f in r):
                failures.append("baseline: expired entry did not fail")
            r = apply_baseline([], write_bl(
                [{"fingerprint": "no:such:finding",
                  "expires": "2099-01-01", "reason": "selftest"}]))
            if not any(f.rule == "baseline" and "stale" in f.message
                       for f in r):
                failures.append("baseline: stale entry did not fail")

    if failures:
        print("analyze --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    n_rules = len({f.rule for f in findings})
    print(f"analyze self-test OK: {len(expected)} seeded fixtures "
          f"fired across {n_rules} rules, {len(clean)} clean fixtures "
          "silent, baseline expiry/staleness verified")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two dirs up from here)")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--spec", default=None,
                    help="lock-order spec (default: lock_order.toml "
                         "next to this script)")
    ap.add_argument("--baseline", default=None,
                    help="findings baseline (default: baseline.json "
                         "next to this script)")
    ap.add_argument("--frontend", choices=["internal", "clang"],
                    default="internal",
                    help="clang uses python libclang bindings when "
                         "importable (falls back to internal)")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--list-locks", action="store_true",
                    help="print every lock identity with example sites")
    ap.add_argument("--dump-edges", action="store_true",
                    help="print the observed acquisition edges")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    tool_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or
                           os.path.join(tool_dir, "..", ".."))
    if args.self_test:
        return self_test(tool_dir, root)

    spec_path = args.spec or os.path.join(tool_dir, "lock_order.toml")
    baseline_path = args.baseline or os.path.join(tool_dir,
                                                  "baseline.json")
    try:
        spec = load_spec(spec_path)
    except (SpecError, OSError) as e:
        print(f"analyze: bad spec {spec_path}: {e}", file=sys.stderr)
        return 2
    try:
        files, cc_path = collect_files(
            root, os.path.join(root, args.build_dir), spec)
        prog = build_program(root, files, spec, verbose=args.verbose)
        if args.frontend == "clang":
            if frontend.try_clang_enrich(prog, cc_path,
                                         verbose=args.verbose):
                print("analyze: libclang type enrichment active")
            else:
                print("analyze: libclang unavailable; internal "
                      "frontend only")
        an, findings = run_passes(prog, spec, root)
    except RuntimeError as e:
        print(f"analyze: {e}", file=sys.stderr)
        return 2
    if args.list_locks:
        dump_locks(an)
        return 0
    if args.dump_edges:
        dump_edges(an)
        return 0
    findings = apply_baseline(findings, baseline_path)
    hard = [f for f in findings if not f.baselined]
    soft = [f for f in findings if f.baselined]
    for f in soft:
        print(f"note (baselined): {f}")
    for f in sorted(hard, key=lambda f: (f.path, f.line)):
        print(f)
    n_fn = sum(1 for f in prog.functions if f.has_body)
    if hard:
        print(f"\nanalyze: {len(hard)} finding(s) over "
              f"{len(prog.files)} files ({n_fn} function bodies)",
              file=sys.stderr)
        return 1
    print(f"analyze OK: {len(prog.files)} files, {n_fn} function "
          f"bodies, {len(spec.locks)} declared locks, "
          f"{len(spec.orders)} declared edges"
          + (f", {len(soft)} baselined" if soft else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""C++ micro-frontend for the semantic concurrency analyzer.

Produces the IR consumed by tools/analyze/analyze.py: per-function event
streams (lock acquisitions, releases, condition-variable waits, calls,
epoch pins, scope boundaries) plus class/member/param type maps used to
resolve lock identities and call receivers.

Two frontends share this IR:

  * InternalFrontend (default) — a self-contained tokenizer + structural
    parser, python3 stdlib only.  It is not a C++ parser; it is a
    micro-frontend tuned to this repository's idiom (see DESIGN.md
    §4.16 for the modelled subset and its documented approximations).
    This is the frontend exercised by --self-test and the one CI runs.

  * clang.cindex (optional, --frontend=clang) — when the python libclang
    bindings are importable, declaration/type information is taken from
    libclang cursors instead of the structural parser, keyed off
    compile_commands.json.  Body events still come from the token
    scanner (libclang's expression cursors are incomplete inside
    templates, which this tree uses heavily).  The toolchain image used
    by CI has no libclang, so this path is gated and best-effort: any
    failure falls back to the internal frontend with a warning.

Modelled synchronization vocabulary (src/common/sync.h):
  MutexLock / ReleasableMutexLock RAII sites, manual Mutex::Lock /
  Unlock / TryLock, CondVar::Wait / WaitFor / WaitUntil,
  HAMMING_REQUIRES / HAMMING_NO_THREAD_SAFETY_ANALYSIS annotations, the
  HAMMING_METRIC_* macros (modelled as MetricsRegistry calls, which is
  what they expand to), and EpochPublisher pins.

Known, deliberate approximations (kept in sync with DESIGN.md):
  * Control flow is linear.  A Release()/Unlock() in a scope *deeper*
    than the acquisition is treated as branch-local: the lock is
    considered re-held once that scope exits (models the early-return
    idiom).  A release at the acquisition scope is permanent.
  * Lambdas are separate anonymous functions; their bodies are analyzed
    with the enclosing function's name/type environment, but their
    events are not attributed to the definition site (a lambda defined
    under a lock may run elsewhere).
  * Virtual dispatch resolves to every same-named method in the
    receiver's class hierarchy (base and derived), so observer
    interfaces pick up their concrete implementations.
"""

from __future__ import annotations

import bisect
import os
import re

# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

_OPS3 = ("<<=", ">>=", "->*", "...", "<=>")
_OPS2 = ("->", "::", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
         "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")

_KEYWORDS_NOT_CALLS = {
    "if", "while", "for", "switch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "catch", "new", "delete", "throw", "case",
    "do", "else", "alignas", "co_return", "co_await", "co_yield",
    "static_assert", "typeid", "_Pragma", "assert",
}

_CONTROL_FIRST = {
    "if", "while", "for", "switch", "do", "else", "case", "default",
    "break", "continue", "goto", "try", "catch", "return",
}

_TYPE_QUALS = {
    "const", "volatile", "typename", "struct", "class", "enum",
    "mutable", "static", "constexpr", "inline", "thread_local",
    "explicit", "virtual", "friend", "extern", "register", "unsigned",
    "signed", "auto",
}

_WRAPPERS = {"shared_ptr", "unique_ptr", "weak_ptr", "vector", "deque",
             "span", "optional", "atomic", "array", "list",
             "reference_wrapper", "initializer_list"}
_MAPLIKE = {"map", "unordered_map"}

_MACRO_RE = re.compile(r"^[A-Z][A-Z0-9_]*[A-Z0-9]$")


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"{self.text}@{self.line}"


def tokenize(text: str):
    """Returns (tokens, comment_lines).  Comments and preprocessor
    directives are dropped; comment_lines records every source line that
    carries (part of) a comment, for justification checks."""
    toks: list[Tok] = []
    comment_lines: set[int] = set()
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and text.startswith("//", i):
            comment_lines.add(line)
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if c == "/" and text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            seg = text[i:j]
            for k in range(seg.count("\n") + 1):
                comment_lines.add(line + k)
            line += seg.count("\n")
            i = j + 2
            continue
        if c == "#":
            # Preprocessor directive (with continuations).
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                k = j - 1
                if k >= 0 and text[k] == "\r":
                    k -= 1
                if k >= i and text[k] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j  # newline handled by main loop
                break
            continue
        if c == "R" and text.startswith('R"', i):
            m = re.match(r'R"([^()\\\s]{0,16})\(', text[i:])
            if m:
                endmark = ")" + m.group(1) + '"'
                j = text.find(endmark, i + m.end())
                if j < 0:
                    j = n
                seg = text[i:j]
                toks.append(Tok("str", '""', line))
                line += seg.count("\n")
                i = j + len(endmark)
                continue
        if c == '"' or c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c or text[j] == "\n":
                    break
                j += 1
            toks.append(Tok("str" if c == '"' else "chr", text[i:j + 1],
                            line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        for op in _OPS3:
            if text.startswith(op, i):
                toks.append(Tok("op", op, line))
                i += len(op)
                break
        else:
            for op in _OPS2:
                if text.startswith(op, i):
                    toks.append(Tok("op", op, line))
                    i += len(op)
                    break
            else:
                toks.append(Tok("op", c, line))
                i += 1
    return toks, comment_lines


# --------------------------------------------------------------------------
# IR
# --------------------------------------------------------------------------


class ClassInfo:
    def __init__(self, name: str, qname: str, path: str, line: int):
        self.name = name
        self.qname = qname
        self.path = path
        self.line = line
        self.members: dict[str, str] = {}   # member -> core type
        self.bases: list[str] = []          # short base-class names
        self.methods: set[str] = set()


class Event:
    """One body event.  kind in {acquire, release, wait, call, invoke,
    scope_open, scope_close}.  Fields are kind-dependent; unused ones
    stay None."""
    __slots__ = ("kind", "line", "depth", "stmt", "lock", "style", "var",
                 "name", "recv", "recv_core", "assigned", "var_type",
                 "callees")

    def __init__(self, kind, line, depth, stmt, **kw):
        self.kind = kind
        self.line = line
        self.depth = depth
        self.stmt = stmt
        self.lock = kw.get("lock")          # identity string
        self.style = kw.get("style")        # raii | releasable | manual
        self.var = kw.get("var")            # RAII guard variable name
        self.name = kw.get("name")          # callee / invoked variable
        self.recv = kw.get("recv")          # raw receiver chain (list)
        self.recv_core = kw.get("recv_core")  # resolved receiver class
        self.assigned = kw.get("assigned")  # var the call initializes
        self.var_type = kw.get("var_type")  # core type of invoked var

    def __repr__(self):  # pragma: no cover - debugging aid
        bits = [self.kind, str(self.line)]
        for f in ("lock", "name", "recv_core", "assigned"):
            v = getattr(self, f)
            if v:
                bits.append(f"{f}={v}")
        return "<" + " ".join(bits) + ">"


class Statement:
    """Discard-pass view of one expression statement."""
    __slots__ = ("line", "void_cast", "macro", "segments")

    def __init__(self, line, void_cast, macro, segments):
        self.line = line
        self.void_cast = void_cast      # statement is a (void)... cast
        self.macro = macro              # statement is MACRO(...);
        # segments: [(final_call_name, recv_core_or_None)] — one per
        # top-level comma segment / ternary branch whose value is unused.
        self.segments = segments


class FunctionInfo:
    def __init__(self, name, cls, path, line):
        self.name = name                # short name (may be <lambda:N>)
        self.cls = cls                  # short enclosing class or None
        self.path = path
        self.line = line
        self.params: dict[str, str] = {}
        self.locals: dict[str, str] = {}
        self.annotations: list[tuple[str, str]] = []
        self.returns_status = False
        self.has_body = False
        self.body = None                # (lo, hi) token range
        self.events: list[Event] = []
        self.statements: list[Statement] = []
        self.parent = None              # enclosing FunctionInfo (lambdas)

    @property
    def qname(self):
        base = f"{self.cls}::{self.name}" if self.cls else self.name
        return base

    @property
    def no_tsa(self):
        return any(m.endswith("NO_THREAD_SAFETY_ANALYSIS")
                   for m, _ in self.annotations)

    @property
    def requires_locks(self):
        return [arg for m, arg in self.annotations
                if m.endswith("REQUIRES") and arg]

    def outer_named(self):
        f = self
        while f.parent is not None:
            f = f.parent
        return f

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<fn {self.qname} {self.path}:{self.line}>"


class FileIR:
    def __init__(self, path):
        self.path = path
        self.toks: list[Tok] = []
        self.comment_lines: set[int] = set()
        self.functions: list[FunctionInfo] = []
        self.classes: dict[str, ClassInfo] = {}
        self.aliases: dict[str, str] = {}
        self.globals: dict[str, str] = {}


# --------------------------------------------------------------------------
# Type helpers
# --------------------------------------------------------------------------


def core_type_of(ts: list[str], aliases: dict[str, str] | None = None):
    """Collapses a type token list to its 'core' short class name:
    strips cv/ref/ptr, namespaces, and smart-pointer/container wrappers
    (a vector<T> resolves to T so that subscripted accesses type-check
    without separate element tracking)."""
    ts = [t for t in ts if t not in ("&", "&&", "*") and
          t not in _TYPE_QUALS]
    i = 0
    while i < len(ts):
        if not (ts[i][0].isalpha() or ts[i][0] == "_"):
            i += 1
            continue
        chain = [ts[i]]
        k = i + 1
        while k + 1 < len(ts) and ts[k] == "::":
            if ts[k + 1][0].isalpha() or ts[k + 1][0] == "_":
                chain.append(ts[k + 1])
                k += 2
            else:
                break
        name = chain[-1]
        if k < len(ts) and ts[k] == "<":
            args, _ = _split_angle_args(ts, k)
            if name in _WRAPPERS and args:
                return core_type_of(args[0], aliases)
            if name in _MAPLIKE and len(args) >= 2:
                return core_type_of(args[1], aliases)
            return _resolve_alias(name, aliases)
        return _resolve_alias(name, aliases)
    return ""


def _resolve_alias(name, aliases, depth=0):
    if aliases and name in aliases and depth < 8:
        return _resolve_alias(aliases[name], aliases, depth + 1) \
            if aliases[name] != name else name
    return name


def _split_angle_args(ts, lt):
    """ts[lt] == '<'; returns ([arg token lists], index past '>')."""
    depth = 0
    args, cur = [], []
    i = lt
    while i < len(ts):
        t = ts[i]
        if t == "<":
            depth += 1
            if depth > 1:
                cur.append(t)
        elif t == ">":
            depth -= 1
            if depth == 0:
                args.append(cur)
                return args, i + 1
            cur.append(t)
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                args.append(cur)
                return args, i + 1
            cur.append(t)
        elif t == "," and depth == 1:
            args.append(cur)
            cur = []
        else:
            if depth >= 1:
                cur.append(t)
        i += 1
    return args, i


# --------------------------------------------------------------------------
# Structural parser
# --------------------------------------------------------------------------


class ParseError(Exception):
    pass


class Parser:
    def __init__(self, path: str, text: str):
        self.path = path
        self.ir = FileIR(path)
        self.toks, self.ir.comment_lines = tokenize(text)
        self.ir.toks = self.toks
        self.i = 0
        self.stack: list[dict] = []
        self._pending_bodies: list[FunctionInfo] = []

    # -- token utilities ---------------------------------------------------

    def _t(self, i):
        return self.toks[i] if 0 <= i < len(self.toks) else Tok("op", "",
                                                                -1)

    def _match(self, i, op, cl):
        """toks[i] is `op`; returns index just past the matching `cl`."""
        depth = 0
        n = len(self.toks)
        while i < n:
            x = self.toks[i].text
            if x == op:
                depth += 1
            elif x == cl:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return n

    def _skip_to_semi(self, i):
        depth = 0
        n = len(self.toks)
        while i < n:
            x = self.toks[i].text
            if x in ("(", "{", "["):
                depth += 1
            elif x in (")", "}", "]"):
                depth -= 1
                if depth < 0:
                    return i  # let caller see the stray closer
            elif x == ";" and depth == 0:
                return i + 1
            i += 1
        return n

    def _skip_angles(self, i):
        """toks[i] may be '<'; conservative angle skipping for template
        headers."""
        if self._t(i).text != "<":
            return i
        depth = 0
        n = len(self.toks)
        while i < n:
            x = self.toks[i].text
            if x == "<":
                depth += 1
            elif x == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif x == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif x in (";", "{"):
                return i  # bail out: not a template header after all
            i += 1
        return n

    # -- scope helpers -----------------------------------------------------

    def _cur_class(self):
        for fr in reversed(self.stack):
            if fr["kind"] == "class":
                return fr["info"]
        return None

    # -- main loop ---------------------------------------------------------

    def parse(self) -> FileIR:
        n = len(self.toks)
        while self.i < n:
            t = self.toks[self.i]
            top = self.stack[-1] if self.stack else None
            kind = top["kind"] if top else "ns"
            if t.text == "}":
                if self.stack:
                    self.stack.pop()
                self.i += 1
                continue
            if kind in ("enum", "block"):
                if t.text == "{":
                    self.stack.append({"kind": "block"})
                self.i += 1
                continue
            if t.kind == "id":
                x = t.text
                if x == "namespace":
                    self._parse_namespace()
                    continue
                if x in ("class", "struct"):
                    self._parse_class()
                    continue
                if x == "enum":
                    self._skip_enum()
                    continue
                if x == "using":
                    self._parse_using()
                    continue
                if x == "typedef":
                    self.i = self._skip_to_semi(self.i)
                    continue
                if x == "template":
                    self.i = self._skip_angles(self.i + 1)
                    continue
                if x in ("public", "private", "protected") and \
                        self._t(self.i + 1).text == ":":
                    self.i += 2
                    continue
                if x in ("friend", "static_assert"):
                    self.i = self._skip_to_semi(self.i)
                    continue
                if x == "extern" and self._t(self.i + 1).kind == "str":
                    if self._t(self.i + 2).text == "{":
                        self.stack.append({"kind": "ns", "name": None})
                        self.i += 3
                    else:
                        self.i += 2
                    continue
                self._parse_declaration()
                continue
            if t.text == "{":
                self.stack.append({"kind": "block"})
                self.i += 1
                continue
            if t.text == "[" and self._t(self.i + 1).text == "[":
                self.i = self._match(self.i, "[", "]")
                continue
            self.i += 1
        for fn in self._pending_bodies:
            self._scan_body(fn)
        return self.ir

    # -- namespace / class / enum / using ---------------------------------

    def _parse_namespace(self):
        self.i += 1
        names = []
        while self._t(self.i).kind == "id":
            names.append(self._t(self.i).text)
            self.i += 1
            if self._t(self.i).text == "::":
                self.i += 1
            else:
                break
        x = self._t(self.i).text
        if x == "=":
            self.i = self._skip_to_semi(self.i)
            return
        if x == "{":
            self.stack.append({"kind": "ns",
                               "name": "::".join(names) or None})
            self.i += 1
            return
        self.i += 1

    def _parse_class(self):
        save = self.i
        self.i += 1
        # attributes / export macros before the name
        while True:
            t = self._t(self.i)
            if t.text == "[" and self._t(self.i + 1).text == "[":
                self.i = self._match(self.i, "[", "]")
                continue
            if t.kind == "id" and _MACRO_RE.match(t.text) and \
                    self._t(self.i + 1).text != ";":
                self.i += 1
                if self._t(self.i).text == "(":
                    self.i = self._match(self.i, "(", ")")
                continue
            break
        name = None
        if self._t(self.i).kind == "id":
            name = self._t(self.i).text
            self.i += 1
            self.i = self._skip_angles(self.i)  # explicit specializations
        while self._t(self.i).text == "final":
            self.i += 1
        x = self._t(self.i).text
        if x == ";":
            self.i += 1  # forward declaration
            return
        if x == ":":
            # base clause: collect short base names up to '{'
            bases, cur = [], []
            self.i += 1
            depth = 0
            while self.i < len(self.toks):
                t = self._t(self.i)
                if t.text == "<":
                    depth += 1
                elif t.text in (">", ">>"):
                    depth -= 2 if t.text == ">>" else 1
                elif t.text == "{" and depth <= 0:
                    break
                elif t.text == "," and depth <= 0:
                    bases.append(cur)
                    cur = []
                elif depth <= 0:
                    cur.append(t.text)
                self.i += 1
            if cur:
                bases.append(cur)
            base_names = []
            for b in bases:
                ids = [w for w in b
                       if w and (w[0].isalpha() or w[0] == "_") and
                       w not in ("public", "private", "protected",
                                 "virtual")]
                if ids:
                    base_names.append(ids[-1])
            x = self._t(self.i).text
            if x != "{":
                self.i = self._skip_to_semi(self.i)
                return
            self._push_class(name, base_names)
            return
        if x == "{":
            self._push_class(name, [])
            return
        # Elaborated-type declaration (`struct Foo var;`): re-parse as a
        # plain declaration with the keyword consumed as a type token.
        self.i = save + 1
        self._parse_declaration(head_start=save)

    def _push_class(self, name, bases):
        if name is None:
            name = f"<anon:{self._t(self.i).line}>"
        qparts = [fr.get("name") for fr in self.stack
                  if fr["kind"] in ("ns", "class") and fr.get("name")]
        info = self.ir.classes.get(name)
        if info is None:
            info = ClassInfo(name, "::".join(qparts + [name]), self.path,
                             self._t(self.i).line)
            self.ir.classes[name] = info
        info.bases.extend(b for b in bases if b not in info.bases)
        self.stack.append({"kind": "class", "name": name, "info": info})
        self.i += 1

    def _skip_enum(self):
        self.i += 1
        while self._t(self.i).kind == "id" or self._t(self.i).text == ":":
            if self._t(self.i).text == "{":
                break
            self.i += 1
        if self._t(self.i).text == "{":
            self.i = self._match(self.i, "{", "}")
        self.i = self._skip_to_semi(self.i)

    def _parse_using(self):
        # using NAME = type...;  |  using namespace x;  |  using a::b;
        if self._t(self.i + 1).kind == "id" and \
                self._t(self.i + 2).text == "=":
            name = self._t(self.i + 1).text
            lo = self.i + 3
            hi = self._skip_to_semi(lo)
            ts = [self.toks[k].text for k in range(lo, hi - 1)]
            self.ir.aliases[name] = core_type_of(ts, None)
            self.i = hi
            return
        self.i = self._skip_to_semi(self.i)

    # -- declarations ------------------------------------------------------

    def _parse_declaration(self, head_start=None):
        start = head_start if head_start is not None else self.i
        n = len(self.toks)
        i = self.i
        while i < n:
            x = self.toks[i].text
            if x == ";":
                self._member_from_tokens(start, i)
                self.i = i + 1
                return
            if x == "=":
                self._member_from_tokens(start, i)
                self.i = self._skip_to_semi(i)
                return
            if x == "{":
                j = self._match(i, "{", "}")
                self._member_from_tokens(start, i)
                if self._t(j).text == ";":
                    j += 1
                self.i = j
                return
            if x == "<":
                j = self._skip_angles(i)
                if j > i + 1:
                    i = j
                    continue
                i += 1
                continue
            if x == "(":
                nm = self._func_name_before(i, start)
                if nm is None:
                    i = self._match(i, "(", ")")
                    continue
                close = self._match(i, "(", ")")
                if nm["macro"]:
                    # ALLCAPS macro "call".  If a body follows this is a
                    # test/fixture macro (TEST(...) { ... }): model it as
                    # an anonymous free function so its body is analyzed.
                    if self._t(close).text == "{":
                        j = self._match(close, "{", "}")
                        fn = self._new_function(
                            f"{nm['name']}@{self.toks[i].line}", None,
                            self.toks[i].line)
                        fn.has_body = True
                        fn.body = (close + 1, j - 1)
                        self._pending_bodies.append(fn)
                        self.i = j
                        return
                    i = close
                    continue
                res = self._after_params(close)
                if res is None:
                    # Not a function signature (e.g. `int x(0);`).
                    self._member_from_tokens(start, i)
                    self.i = self._skip_to_semi(close)
                    return
                kind, ann, end, body = res
                self._emit_function(start, nm, (i + 1, close - 1), ann,
                                    body)
                self.i = end
                return
            i += 1
        self.i = n

    def _func_name_before(self, paren, start):
        """Identifies the function name ending just before toks[paren]
        ('(').  Returns {'name', 'lo', 'quals', 'macro'} or None."""
        j = paren - 1
        if j < start:
            return None
        t = self.toks[j]
        if t.kind != "id":
            # operator functions: ids 'operator' then op token(s)
            k = j
            ops = []
            while k >= start and self.toks[k].kind == "op" and \
                    self.toks[k].text not in (")", "]", "}", ";"):
                ops.append(self.toks[k].text)
                k -= 1
                if len(ops) > 2:
                    break
            if k >= start and self.toks[k].kind == "id" and \
                    self.toks[k].text == "operator":
                return {"name": "operator" + "".join(reversed(ops)),
                        "lo": k, "quals": self._quals_before(k, start),
                        "macro": False}
            return None
        name = t.text
        if name in _KEYWORDS_NOT_CALLS or name in _TYPE_QUALS:
            return None
        lo = j
        if j - 1 >= start and self.toks[j - 1].text == "~":
            name = "~" + name
            lo = j - 1
        if name == "operator":
            return None
        if _MACRO_RE.match(name):
            return {"name": name, "lo": lo, "quals": [], "macro": True}
        return {"name": name, "lo": lo,
                "quals": self._quals_before(lo, start), "macro": False}

    def _quals_before(self, lo, start):
        quals = []
        k = lo - 1
        while k - 1 >= start and self.toks[k].text == "::" and \
                self.toks[k - 1].kind == "id":
            quals.append(self.toks[k - 1].text)
            k -= 2
        quals.reverse()
        return quals

    def _after_params(self, i):
        """Scans the region after a parameter list.  Returns
        (kind, annotations, end_index, body_range|None) with kind in
        {'body', 'decl'}, or None when this is not a function."""
        n = len(self.toks)
        ann = []
        while i < n:
            t = self.toks[i]
            x = t.text
            if x in ("const", "override", "final", "mutable",
                     "constexpr", "inline", "&", "&&", "volatile",
                     "try"):
                i += 1
                continue
            if x in ("noexcept", "throw"):
                i += 1
                if self._t(i).text == "(":
                    i = self._match(i, "(", ")")
                continue
            if x == "->":
                i += 1
                # trailing return type: consume conservative type tokens
                while i < n and self.toks[i].text not in ("{", ";", "="):
                    if self.toks[i].text == "<":
                        i = self._skip_angles(i)
                    else:
                        i += 1
                continue
            if t.kind == "id" and _MACRO_RE.match(x):
                i += 1
                arg = ""
                if self._t(i).text == "(":
                    j = self._match(i, "(", ")")
                    arg = " ".join(tk.text for tk in self.toks[i + 1:j - 1])
                    i = j
                ann.append((x, arg))
                continue
            if x == "[" and self._t(i + 1).text == "[":
                i = self._match(i, "[", "]")
                continue
            if x == "=":
                nxt = self._t(i + 1).text
                if nxt in ("default", "delete", "0"):
                    return ("decl", ann, self._skip_to_semi(i), None)
                return None
            if x == ":":
                j = self._skip_ctor_inits(i + 1)
                if j is None:
                    return None
                i = j  # index of body '{'
                continue
            if x == "{":
                j = self._match(i, "{", "}")
                return ("body", ann, j, (i + 1, j - 1))
            if x == ";":
                return ("decl", ann, i + 1, None)
            if x == ",":
                return ("decl", ann, self._skip_to_semi(i), None)
            return None
        return None

    def _skip_ctor_inits(self, i):
        """Scans a constructor initializer list starting at toks[i];
        returns the index of the body '{' or None."""
        n = len(self.toks)
        while i < n:
            # initializer: id-chain [<...>] ( ... ) | { ... }
            if self.toks[i].text == "...":  # pack expansion
                i += 1
                continue
            if self.toks[i].kind != "id":
                return None
            i += 1
            while self._t(i).text == "::" and self._t(i + 1).kind == "id":
                i += 2
            if self._t(i).text == "<":
                i = self._skip_angles(i)
            x = self._t(i).text
            if x == "(":
                i = self._match(i, "(", ")")
            elif x == "{":
                i = self._match(i, "{", "}")
            else:
                return None
            if self._t(i).text == "...":
                i += 1
            x = self._t(i).text
            if x == ",":
                i += 1
                continue
            if x == "{":
                return i
            return None
        return None

    def _member_from_tokens(self, start, end):
        """Records a member/global variable declaration from
        toks[start:end] (terminator excluded)."""
        ts = list(self.toks[start:end])
        # strip trailing annotation macros / attributes / brace groups
        while ts:
            if ts[-1].text == "]" or ts[-1].text == "}" or \
                    ts[-1].text == ")":
                opener = {"]": "[", "}": "{", ")": "("}[ts[-1].text]
                depth = 0
                k = len(ts) - 1
                while k >= 0:
                    if ts[k].text == ts[-1].text:
                        depth += 1
                    elif ts[k].text == opener:
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                ts = ts[:k]
                continue
            if ts[-1].kind == "id" and _MACRO_RE.match(ts[-1].text):
                ts = ts[:-1]
                continue
            break
        if not ts or ts[-1].kind != "id":
            return
        name = ts[-1].text
        if name in _TYPE_QUALS or name in _KEYWORDS_NOT_CALLS or \
                name in ("default", "delete", "operator"):
            return
        type_ts = [t.text for t in ts[:-1]]
        if not type_ts:
            return
        core = core_type_of(type_ts, self.ir.aliases)
        if not core:
            return
        cls = self._cur_class()
        if cls is not None:
            cls.members[name] = core
        else:
            self.ir.globals[name] = core

    def _new_function(self, name, cls_name, line):
        fn = FunctionInfo(name, cls_name, self.path, line)
        self.ir.functions.append(fn)
        return fn

    def _emit_function(self, head_start, nm, params, ann, body):
        cls = self._cur_class()
        cls_name = cls.name if cls else None
        if nm["quals"]:
            cls_name = nm["quals"][-1]  # out-of-class definition
        line = self.toks[nm["lo"]].line
        fn = self._new_function(nm["name"], cls_name, line)
        fn.annotations = ann
        head = [t.text for t in self.toks[head_start:nm["lo"]]]
        fn.returns_status = any(
            w in ("Status", "Result") or
            _resolve_alias(w, self.ir.aliases) in ("Status", "Result")
            for w in head)
        fn.params = self._parse_params(params)
        if cls is not None and nm["quals"] == []:
            cls.methods.add(nm["name"])
        if body is not None:
            fn.has_body = True
            fn.body = body
            self._pending_bodies.append(fn)

    def _parse_params(self, rng):
        lo, hi = rng
        params = {}
        depth = 0
        cur: list[Tok] = []
        groups = []
        for k in range(lo, hi + 1):
            t = self.toks[k]
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            if t.text == "," and depth <= 0:
                groups.append(cur)
                cur = []
            else:
                cur.append(t)
        if cur:
            groups.append(cur)
        for g in groups:
            # strip default argument
            for k, t in enumerate(g):
                if t.text == "=":
                    g = g[:k]
                    break
            ids = [t for t in g if t.kind == "id" and
                   t.text not in _TYPE_QUALS]
            if len(ids) < 2:
                continue  # unnamed or simple param: no receiver value
            name = ids[-1].text
            type_ts = []
            for t in g:
                if t is ids[-1]:
                    break
                type_ts.append(t.text)
            params[name] = core_type_of(type_ts, self.ir.aliases)
        return params

    # -- body scanning -----------------------------------------------------

    _LOCK_GUARDS = {"MutexLock": "raii", "ReleasableMutexLock":
                    "releasable"}
    _MANUAL_LOCK = {"Lock": "acquire", "TryLock": "acquire",
                    "Unlock": "release"}
    _WAITS = {"Wait", "WaitFor", "WaitUntil"}

    def _scan_body(self, fn: FunctionInfo):
        lo, hi = fn.body
        i = lo
        depth = 1
        paren = 0
        stmt_start = i
        stmt_id = 0
        releasable: dict[str, int] = {}  # guard var -> True
        # token ranges of child lambdas: their events belong to the
        # lambda (analyzed separately), not to this function
        self._lambda_skip = []
        while i <= hi:
            t = self.toks[i]
            x = t.text
            if x == "(":
                paren += 1
            elif x == ")":
                paren = max(0, paren - 1)
            elif x == "[":
                if self._t(i + 1).text == "[":
                    i = self._match(i, "[", "]")
                    continue
                lam = self._try_lambda(i, fn, hi)
                if lam is not None:
                    i = lam
                    continue
            elif x == "{" and paren == 0:
                self._process_statement(fn, stmt_start, i - 1, depth,
                                        stmt_id, releasable)
                stmt_id += 1
                depth += 1
                fn.events.append(Event("scope_open", t.line, depth,
                                       stmt_id))
                i += 1
                stmt_start = i
                continue
            elif x == "}" and paren == 0:
                self._process_statement(fn, stmt_start, i - 1, depth,
                                        stmt_id, releasable)
                stmt_id += 1
                fn.events.append(Event("scope_close", t.line, depth,
                                       stmt_id))
                depth -= 1
                i += 1
                stmt_start = i
                continue
            elif x == ";" and paren == 0:
                self._process_statement(fn, stmt_start, i - 1, depth,
                                        stmt_id, releasable)
                stmt_id += 1
                i += 1
                stmt_start = i
                continue
            i += 1
        self._process_statement(fn, stmt_start, hi, depth, stmt_id,
                                releasable)

    def _try_lambda(self, i, fn, body_hi):
        """toks[i] == '['.  If this begins a lambda, parses it as an
        anonymous child function and returns the index past its body;
        otherwise returns None."""
        prev = self._t(i - 1)
        if prev.kind in ("id", "num", "str") or prev.text in (")", "]"):
            return None  # subscript
        cap_end = self._match(i, "[", "]")
        j = cap_end
        params = (0, -1)
        if self._t(j).text == "(":
            pclose = self._match(j, "(", ")")
            params = (j + 1, pclose - 1)
            j = pclose
        while self._t(j).text in ("mutable", "constexpr", "noexcept"):
            j += 1
            if self._t(j).text == "(":
                j = self._match(j, "(", ")")
        if self._t(j).text == "->":
            j += 1
            while self._t(j).kind == "id" or self._t(j).text in \
                    ("::", "*", "&", "const"):
                if self._t(j).text == "{":
                    break
                j += 1
            if self._t(j).text == "<":
                j = self._skip_angles(j)
        if self._t(j).text != "{":
            return None
        close = self._match(j, "{", "}")
        if close - 1 > body_hi + 1:
            return None
        lam = self._new_function(f"<lambda:{self._t(i).line}>", fn.cls,
                                 self._t(i).line)
        lam.parent = fn
        lam.has_body = True
        lam.body = (j + 1, close - 2)
        if params != (0, -1):
            lam.params = self._parse_params(params)
        self._pending_bodies.append(lam)
        self._lambda_skip.append((i, close - 1))
        return close

    # statement processing

    def _process_statement(self, fn, lo, hi, depth, stmt_id, releasable):
        if lo > hi:
            return
        toks = self.toks
        first = toks[lo]
        # --- local declaration / RAII lock detection
        decl = self._classify_decl(lo, hi)
        if decl is not None:
            var, core, ctor_args, assigned_call = decl
            if core in self._LOCK_GUARDS and ctor_args is not None:
                lock_expr = self._strip_addr(ctor_args)
                fn.events.append(Event(
                    "acquire", first.line, depth, stmt_id,
                    lock=lock_expr, style=self._LOCK_GUARDS[core],
                    var=var))
                if self._LOCK_GUARDS[core] == "releasable":
                    releasable[var] = True
                fn.locals[var] = core
                return
            if var is not None:
                fn.locals.setdefault(var, core)
        # --- scan calls inside the statement
        assigned_var = decl[0] if decl is not None else None
        self._scan_calls(fn, lo, hi, depth, stmt_id, releasable,
                         assigned_var)
        # --- discard-pass statement record
        if decl is None and first.text not in _CONTROL_FIRST and \
                first.kind in ("id", "op"):
            st = self._statement_record(lo, hi)
            if st is not None:
                fn.statements.append(st)

    def _strip_addr(self, ts):
        out = [w for w in ts if w not in ("&",)]
        if out[:2] == ["this", "->"]:
            out = out[2:]
        return out

    def _classify_decl(self, lo, hi):
        """Returns (var, core_type, ctor_arg_tokens|None, rhs_call|None)
        when toks[lo:hi] is a simple local declaration, else None."""
        toks = self.toks
        if toks[lo].kind != "id" or toks[lo].text in _CONTROL_FIRST or \
                _MACRO_RE.match(toks[lo].text):
            return None
        # type chain
        i = lo
        type_ts = []
        n_ids = 0
        while i <= hi:
            t = toks[i]
            if t.kind == "id" and t.text not in _TYPE_QUALS:
                # lookahead: is this the variable name?
                nxt = self._t(i + 1).text
                if (n_ids >= 1 or "auto" in type_ts) and \
                        (nxt in ("=", "(", "{", ";", "[") or i == hi):
                    var = t.text
                    core = core_type_of(type_ts, self.ir.aliases)
                    if not core and "auto" in type_ts:
                        core = "auto"  # deduced type: identity only
                    if not core or var in _KEYWORDS_NOT_CALLS:
                        return None
                    ctor_args = None
                    rhs_call = None
                    if nxt == "(":
                        close = self._match(i + 1, "(", ")")
                        ctor_args = [tk.text
                                     for tk in toks[i + 2:close - 1]]
                    elif nxt == "=":
                        k = i + 2
                        if self._t(k).kind == "id":
                            rhs_call = self._t(k).text
                    return (var, core, ctor_args, rhs_call)
                type_ts.append(t.text)
                n_ids += 1
                i += 1
                if self._t(i).text == "<":
                    args_ts = []
                    j = self._skip_angles(i)
                    args_ts = [tk.text for tk in toks[i:j]]
                    type_ts.extend(args_ts)
                    i = j
                continue
            if t.text in ("::", "*", "&", "&&") or \
                    (t.kind == "id" and t.text in _TYPE_QUALS):
                type_ts.append(t.text)
                i += 1
                continue
            return None
        return None

    def _scan_calls(self, fn, lo, hi, depth, stmt_id, releasable,
                    assigned_var):
        toks = self.toks
        j = lo
        while j <= hi:
            skip = next((s for s in self._lambda_skip
                         if s[0] <= j <= s[1]), None)
            if skip is not None:
                j = skip[1] + 1
                continue
            t = toks[j]
            if t.kind != "id" or self._t(j + 1).text != "(":
                j += 1
                continue
            name = t.text
            if name in _KEYWORDS_NOT_CALLS or name in _TYPE_QUALS:
                j += 1
                continue
            line = t.line
            # receiver chain (walk back over `a.b->` / `f()->`)
            recv, recv_kind = self._receiver_before(j, lo)
            ev = None
            if name.startswith("HAMMING_METRIC_"):
                ev = Event("call", line, depth, stmt_id,
                           name={"HAMMING_METRIC_ADD": "Add",
                                 "HAMMING_METRIC_SET": "Set",
                                 "HAMMING_METRIC_OBSERVE": "Observe"}
                           .get(name, "Add"),
                           recv=None, recv_core="MetricsRegistry")
            elif _MACRO_RE.match(name):
                j += 1
                continue
            elif name in self._MANUAL_LOCK and recv and \
                    recv_kind == "chain":
                ev = Event("acquire" if self._MANUAL_LOCK[name] ==
                           "acquire" else "release", line, depth,
                           stmt_id, lock=recv, style="manual")
            elif name in self._WAITS and recv:
                arg = self._first_arg(j + 1)
                ev = Event("wait", line, depth, stmt_id,
                           lock=self._strip_addr(arg) if arg else None,
                           recv=recv)
            elif name == "Release" and recv and recv_kind == "chain" \
                    and len(ids := [p for p in recv
                                    if p not in (".", "[]")]) == 1 \
                    and ids[0] in releasable:
                ev = Event("release", line, depth, stmt_id,
                           lock=None, style="releasable", var=ids[0])
            elif recv is None and self._is_known_var(fn, name):
                ev = Event("invoke", line, depth, stmt_id, name=name)
            else:
                ev = Event("call", line, depth, stmt_id, name=name,
                           recv=recv,
                           assigned=assigned_var)
            fn.events.append(ev)
            j += 1

    def _is_known_var(self, fn, name):
        f = fn
        while f is not None:
            if name in f.locals or name in f.params:
                return True
            f = f.parent
        return False

    def _receiver_before(self, name_idx, lo):
        """Receiver chain ending at `.`/`->` just before toks[name_idx].
        Returns (chain_tokens|None, 'chain'|'callresult'|None)."""
        k = name_idx - 1
        if k < lo or self.toks[k].text not in (".", "->"):
            # qualified static call A::B(
            if k >= lo and self.toks[k].text == "::" and \
                    self._t(k - 1).kind == "id":
                return ([self._t(k - 1).text, "::"], "qual")
            return (None, None)
        chain: list[str] = []
        while k >= lo:
            x = self.toks[k].text
            if x in (".", "->"):
                chain.append(".")
                k -= 1
                continue
            if x == "]":
                # skip subscript, mark with []
                depth = 0
                while k >= lo:
                    if self.toks[k].text == "]":
                        depth += 1
                    elif self.toks[k].text == "[":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                chain.append("[]")
                k -= 1
                continue
            if x == ")":
                # receiver is a call result: find the call name
                depth = 0
                while k >= lo:
                    if self.toks[k].text == ")":
                        depth += 1
                    elif self.toks[k].text == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                k -= 1
                if k >= lo and self.toks[k].kind == "id":
                    chain.append(self.toks[k].text + "()")
                    k -= 1
                    # only support a single call-result hop
                    chain.reverse()
                    return (chain, "callresult")
                return (None, None)
            if self.toks[k].kind == "id":
                chain.append(x)
                k -= 1
                if k >= lo and self.toks[k].text == "::":
                    # namespace-qualified receiver: drop qualifier
                    k -= 2
                continue
            break
        chain.reverse()
        # strip leading separators
        while chain and chain[0] == ".":
            chain = chain[1:]
        return (chain or None, "chain" if chain else None)

    def _first_arg(self, paren_idx):
        """Token texts of the first top-level argument of the call whose
        '(' is at paren_idx."""
        close = self._match(paren_idx, "(", ")")
        out = []
        depth = 0
        for k in range(paren_idx + 1, close - 1):
            x = self.toks[k].text
            if x in ("(", "[", "{", "<"):
                depth += 1
            elif x in (")", "]", "}", ">"):
                depth -= 1
            elif x == "," and depth == 0:
                break
            out.append(x)
        return out

    def _statement_record(self, lo, hi):
        toks = self.toks
        line = toks[lo].line
        void_cast = (toks[lo].text == "(" and
                     self._t(lo + 1).text == "void" and
                     self._t(lo + 2).text == ")")
        macro = (toks[lo].kind == "id" and
                 bool(_MACRO_RE.match(toks[lo].text)))
        if void_cast:
            # `(void)key;` silencing an unused binding is not a discard;
            # only a (void)-cast over a *call* is
            has_call = any(
                toks[k].kind == "id" and self._t(k + 1).text == "(" and
                toks[k].text not in _KEYWORDS_NOT_CALLS and
                not _MACRO_RE.match(toks[k].text)
                for k in range(lo + 3, hi + 1))
            if not has_call:
                return None
            return Statement(line, True, False, [])
        if macro:
            return Statement(line, False, True, [])
        # a top-level assignment consumes the statement's value
        # (covers `x = cond ? A() : B();` whose '=' sits before the '?')
        depth = 0
        for k in range(lo, hi + 1):
            x = toks[k].text
            if x in ("(", "[", "{"):
                depth += 1
            elif x in (")", "]", "}"):
                depth = max(0, depth - 1)
            elif depth == 0 and x in ("=", "+=", "-=", "*=", "/=", "%=",
                                      "&=", "|=", "^=", "<<=", ">>="):
                return None
        # split on top-level ',' and ternary branches; record the final
        # call of each value-discarding segment
        segs = self._split_segments(lo, hi)
        out = []
        for s_lo, s_hi in segs:
            fc = self._final_call(s_lo, s_hi)
            if fc is not None:
                out.append(fc)
        if not out:
            return None
        return Statement(line, False, False, out)

    def _split_segments(self, lo, hi):
        toks = self.toks
        segs = []
        depth = 0
        bounds = []
        for k in range(lo, hi + 1):
            x = toks[k].text
            if x in ("(", "[", "{"):
                depth += 1
            elif x in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and x in (",", "?", ":"):
                bounds.append((k, x))
        prev = lo
        for b, d in bounds:
            segs.append((prev, b - 1, d))
            prev = b + 1
        segs.append((prev, hi, None))
        # a segment followed by '?' is a ternary condition — its value
        # is consumed, so it is not a discard candidate
        return [(a, b) for a, b, d in segs if a <= b and d != "?"]

    def _final_call(self, lo, hi):
        """(name, recv_chain) of the last top-level call in the segment
        whose value is discarded, or None (assignments, non-calls,
        casts, throw/co_* consume or don't produce a value)."""
        toks = self.toks
        depth = 0
        last = None
        if toks[lo].text in ("throw", "co_await", "co_yield", "delete",
                             "new"):
            return None
        for k in range(lo, hi + 1):
            x = toks[k].text
            if depth == 0 and x in ("=", "+=", "-=", "*=", "/=", "%=",
                                    "&=", "|=", "^=", "<<=", ">>="):
                return None
            if toks[k].kind == "id" and self._t(k + 1).text == "(" and \
                    depth == 0:
                if x not in _KEYWORDS_NOT_CALLS and \
                        not _MACRO_RE.match(x):
                    recv, _ = self._receiver_before(k, lo)
                    last = (x, recv)
            if x in ("(", "[", "{"):
                depth += 1
            elif x in (")", "]", "}"):
                depth = max(0, depth - 1)
        return last


def parse_file(path: str, text: str | None = None) -> FileIR:
    if text is None:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    return Parser(path, text).parse()


# --------------------------------------------------------------------------
# Program: linked view over all parsed files
# --------------------------------------------------------------------------


class Program:
    def __init__(self):
        self.files: dict[str, FileIR] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.aliases: dict[str, str] = {}
        self.globals: dict[str, str] = {}
        self.functions: list[FunctionInfo] = []
        self.name_index: dict[str, list[FunctionInfo]] = {}
        self.method_index: dict[tuple, list[FunctionInfo]] = {}
        self.derived: dict[str, set[str]] = {}

    def add_file(self, ir: FileIR):
        self.files[ir.path] = ir
        for name, ci in ir.classes.items():
            have = self.classes.get(name)
            if have is None:
                self.classes[name] = ci
            else:
                have.members.update(ci.members)
                have.methods.update(ci.methods)
                have.bases.extend(b for b in ci.bases
                                  if b not in have.bases)
        self.aliases.update(ir.aliases)
        self.globals.update(ir.globals)
        self.functions.extend(ir.functions)

    def link(self):
        self.name_index.clear()
        self.method_index.clear()
        for fn in self.functions:
            self.name_index.setdefault(fn.name, []).append(fn)
            self.method_index.setdefault((fn.cls, fn.name),
                                         []).append(fn)
        # propagate header-declaration annotations onto definitions
        ann_by_key: dict[tuple, list] = {}
        for fn in self.functions:
            if fn.annotations:
                ann_by_key.setdefault((fn.cls, fn.name),
                                      []).extend(fn.annotations)
        for fn in self.functions:
            if fn.has_body:
                extra = ann_by_key.get((fn.cls, fn.name), [])
                for a in extra:
                    if a not in fn.annotations:
                        fn.annotations.append(a)
        # returns_status union across decls/defs of the same name+class
        ret_by_key: dict[tuple, bool] = {}
        for fn in self.functions:
            key = (fn.cls, fn.name)
            ret_by_key[key] = ret_by_key.get(key, False) or \
                fn.returns_status
        for fn in self.functions:
            fn.returns_status = ret_by_key[(fn.cls, fn.name)]
        self.derived.clear()
        for ci in self.classes.values():
            for b in ci.bases:
                self.derived.setdefault(b, set()).add(ci.name)

    # -- type/identity resolution -----------------------------------------

    def hierarchy(self, cls: str) -> set[str]:
        """cls plus transitive bases and derived classes."""
        out = {cls}
        work = [cls]
        while work:
            c = work.pop()
            ci = self.classes.get(c)
            if ci:
                for b in ci.bases:
                    if b not in out:
                        out.add(b)
                        work.append(b)
            for d in self.derived.get(c, ()):  # derived closure
                if d not in out:
                    out.add(d)
                    work.append(d)
        return out

    def var_core(self, fn: FunctionInfo, name: str) -> str | None:
        f = fn
        while f is not None:
            if name in f.locals:
                return _resolve_alias(f.locals[name], self.aliases)
            if name in f.params:
                return _resolve_alias(f.params[name], self.aliases)
            f = f.parent
        # class members (own class, then bases)
        cls = fn.cls
        seen = set()
        work = [cls] if cls else []
        while work:
            c = work.pop()
            if c in seen or c is None:
                continue
            seen.add(c)
            ci = self.classes.get(c)
            if ci:
                if name in ci.members:
                    return _resolve_alias(ci.members[name], self.aliases)
                work.extend(ci.bases)
        if name in self.globals:
            return _resolve_alias(self.globals[name], self.aliases)
        return None

    def chain_core(self, fn: FunctionInfo, chain: list[str]) -> str | None:
        """Resolves `a.b.c` / `Pin().x` receiver chains to a core class
        name."""
        if not chain:
            return None
        parts = [p for p in chain if p not in (".", "[]")]
        if not parts:
            return None
        first = parts[0]
        if first == "this":
            ty = fn.cls
        elif first.endswith("()"):
            ty = self.call_return_core(fn, first[:-2])
        else:
            ty = self.var_core(fn, first)
            if ty is None and len(parts) == 1:
                return None
        for part in parts[1:]:
            if ty is None:
                return None
            if part.endswith("()"):
                ty = self.method_return_core(ty, part[:-2])
                continue
            ci = self.classes.get(ty)
            nxt = None
            seen = set()
            work = [ty]
            while work:
                c = work.pop()
                if c in seen:
                    continue
                seen.add(c)
                ci = self.classes.get(c)
                if ci:
                    if part in ci.members:
                        nxt = _resolve_alias(ci.members[part],
                                             self.aliases)
                        break
                    work.extend(ci.bases)
            ty = nxt
        return ty

    def call_return_core(self, fn, name):
        """Core return type of an unqualified call (used for
        `Pin()->...` receivers)."""
        cands = []
        if fn.cls:
            for c in self.hierarchy(fn.cls):
                cands.extend(self.method_index.get((c, name), []))
        if not cands:
            cands = self.name_index.get(name, [])
        # Pin() is the interesting case: both ConcurrentHAIndex::Pin and
        # EpochPublisher::Pin return a snapshot pointer; the alias map
        # resolves SnapshotPtr/Ptr to the snapshot class.
        for cand in cands:
            ret = self._return_core(cand)
            if ret:
                return ret
        return None

    def method_return_core(self, cls, name):
        for c in self.hierarchy(cls):
            for cand in self.method_index.get((c, name), []):
                ret = self._return_core(cand)
                if ret:
                    return ret
        return None

    def _return_core(self, fn):
        # The structural parser does not keep return-type tokens beyond
        # the Status/Result flag; aliases cover the snapshot-pointer
        # case (SnapshotPtr -> Snapshot).  Heuristic: Pin methods return
        # the pinned snapshot type.
        if fn.name == "Pin":
            return self.aliases.get("SnapshotPtr") or \
                self.aliases.get("Ptr") or "Snapshot"
        return None

    def lock_identity(self, fn: FunctionInfo, expr: list[str]) -> str:
        """Resolves a lock expression (tokens, '&'/'this->' stripped) to
        a stable identity: 'Class::member', 'Function::local', or the
        raw expression when unresolvable."""
        if not expr:
            return "?"
        parts: list[list[str]] = [[]]
        depth = 0
        for w in expr:
            if w in ("[",):
                depth += 1
                continue
            if w in ("]",):
                depth -= 1
                continue
            if depth > 0:
                continue
            if w in (".", "->"):
                parts.append([])
                continue
            parts[-1].append(w)
        comps = ["".join(p) for p in parts if p]
        if not comps:
            return " ".join(expr)
        if len(comps) == 1:
            name = comps[0]
            f = fn
            while f is not None:
                if name in f.locals or name in f.params:
                    owner = f.outer_named()
                    return f"{owner.name}::{name}"
                f = f.parent
            cls = fn.cls
            seen = set()
            work = [cls] if cls else []
            while work:
                c = work.pop()
                if c is None or c in seen:
                    continue
                seen.add(c)
                ci = self.classes.get(c)
                if ci:
                    if name in ci.members:
                        return f"{c}::{name}"
                    work.extend(ci.bases)
            if name in self.globals:
                return f"::{name}"
            return name
        # multi-component: type of the owner of the last component
        owner_chain = []
        for p in parts[:-1]:
            if p:
                owner_chain.append("".join(p))
                owner_chain.append(".")
        owner_core = self.chain_core(fn, owner_chain[:-1]) \
            if owner_chain else None
        last = comps[-1]
        if owner_core:
            return f"{owner_core}::{last}"
        return ".".join(comps)

    def resolve_callees(self, fn: FunctionInfo, ev: Event,
                        cap: int = 12) -> list[FunctionInfo]:
        """Candidate bodies for a call event.  Receiver-typed lookups
        search the class hierarchy (virtual dispatch); unqualified calls
        prefer same-class methods; the name-unique fallback only applies
        when every candidate lives in one class (avoids cross-class
        false edges)."""
        name = ev.name
        if ev.recv and len(ev.recv) >= 2 and ev.recv[-1] == "::":
            cls = ev.recv[0]
            return [f for f in self.method_index.get((cls, name), [])
                    if f.has_body]
        if ev.recv:
            core = ev.recv_core or self.chain_core(fn, ev.recv)
            ev.recv_core = core
            if core:
                out = []
                for c in self.hierarchy(core):
                    out.extend(f for f in
                               self.method_index.get((c, name), [])
                               if f.has_body)
                if out:
                    return out[:cap]
                return []
        else:
            f = fn
            cls = fn.cls
            if cls:
                out = []
                for c in self.hierarchy(cls):
                    out.extend(x for x in
                               self.method_index.get((c, name), [])
                               if x.has_body)
                if out:
                    return out[:cap]
            free = [x for x in self.name_index.get(name, [])
                    if x.cls is None and x.has_body]
            if free:
                return free[:cap]
        cands = [x for x in self.name_index.get(name, []) if x.has_body]
        classes = {x.cls for x in cands}
        if len(classes) == 1 and cands:
            return cands[:cap]
        return []


def try_clang_enrich(program: Program, compile_commands: str,
                     verbose=False) -> bool:
    """Optional libclang pass: when python clang bindings are available,
    replace the structural parser's member/param type maps with
    cursor-accurate ones.  Returns True when enrichment ran.  Body
    events always come from the token scanner (see module docstring)."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return False
    try:
        index = cindex.Index.create()
    except Exception as e:  # pragma: no cover - depends on local install
        if verbose:
            print(f"analyze: libclang unavailable ({e}); "
                  "using internal frontend")
        return False
    import json
    try:
        with open(compile_commands, encoding="utf-8") as f:
            entries = json.load(f)
    except OSError:
        return False
    ran = False
    for entry in entries:
        path = os.path.realpath(entry["file"])
        if path not in {os.path.realpath(p) for p in program.files}:
            continue
        args = [a for a in entry.get("command", "").split()[1:]
                if not a.endswith(".cc") and a != "-c" and a != "-o"]
        try:
            tu = index.parse(path, args=args)
        except Exception:  # pragma: no cover
            continue
        ran = True
        for cur in tu.cursor.walk_preorder():
            try:
                if cur.kind == cindex.CursorKind.FIELD_DECL and \
                        cur.semantic_parent is not None:
                    cls = program.classes.get(
                        cur.semantic_parent.spelling)
                    if cls is not None:
                        toks = re.findall(r"\w+|::|<|>|,",
                                          cur.type.spelling)
                        cls.members[cur.spelling] = core_type_of(
                            toks, program.aliases)
            except Exception:  # pragma: no cover
                continue
    return ran

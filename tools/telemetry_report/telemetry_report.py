#!/usr/bin/env python3
"""Render live-telemetry JSONL artifacts into a human-readable summary.

Inputs are the files a telemetry-enabled serving run leaves behind
(bench_serving writes them next to its JSON report):

  *_timeseries.jsonl  one TimeSeriesCollector window per line
  *_querylog.jsonl    one sampled QueryLog exemplar per line

The report prints a QPS/latency timeline from the windows and the
slowest recorded queries with their per-phase span breakdowns from the
query log. Both inputs are validated as they are read — malformed JSON,
missing fields, or out-of-order percentiles exit non-zero, which is how
scripts/check.sh uses this tool as a schema check.

Usage:
  telemetry_report.py [--timeseries=F] [--querylog=F] [--top=N]
                      [--latency-hist=serving.e2e_us]
                      [--qps-counter=serving.accepted]
"""

import json
import sys

WINDOW_FIELDS = ("window", "t_start_s", "duration_s", "counters", "gauges",
                 "histograms")
HIST_FIELDS = ("count", "sum", "mean", "p50", "p99", "p999")
ENTRY_FIELDS = ("trace_id", "head_sampled", "slow", "ok", "kind", "param",
                "t_s", "e2e_us", "queue_us", "service_us", "batch_size",
                "stats", "spans")


def fail(msg):
    print(f"telemetry_report: {msg}", file=sys.stderr)
    sys.exit(1)


def load_jsonl(path, kind):
    rows = []
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: invalid JSON ({e})")
    except OSError as e:
        fail(f"cannot read {kind} file: {e}")
    if not rows:
        fail(f"{path}: no {kind} records")
    return rows


def validate_window(path, i, w):
    for field in WINDOW_FIELDS:
        if field not in w:
            fail(f"{path}: window {i} missing {field!r}")
    for name, h in w["histograms"].items():
        for field in HIST_FIELDS:
            if field not in h:
                fail(f"{path}: window {i} histogram {name!r} missing "
                     f"{field!r}")
        if not (h["p50"] <= h["p99"] <= h["p999"]):
            fail(f"{path}: window {i} histogram {name!r} percentiles out of "
                 f"order: p50={h['p50']} p99={h['p99']} p999={h['p999']}")
    for name, c in w["counters"].items():
        if "delta" not in c or "rate" not in c:
            fail(f"{path}: window {i} counter {name!r} missing delta/rate")


def validate_entry(path, i, e):
    for field in ENTRY_FIELDS:
        if field not in e:
            fail(f"{path}: query-log entry {i} missing {field!r}")
    for s in e["spans"]:
        if "phase" not in s or "dur_us" not in s:
            fail(f"{path}: query-log entry {i} has a span without "
                 f"phase/dur_us: {s}")


def report_timeseries(path, qps_counter, latency_hist):
    windows = load_jsonl(path, "time-series")
    for i, w in enumerate(windows):
        validate_window(path, i, w)
    print(f"Time series: {len(windows)} windows from {path}")
    print(f"{'window':>6} {'t_start_s':>10} {'dur_s':>8} {'qps':>10} "
          f"{'served':>8} {'p50_us':>9} {'p99_us':>9} {'p999_us':>9}")
    total_served = 0
    for w in windows:
        counter = w["counters"].get(qps_counter, {})
        hist = w["histograms"].get(latency_hist, {})
        served = hist.get("count", 0)
        total_served += served
        print(f"{w['window']:>6} {w['t_start_s']:>10.3f} "
              f"{w['duration_s']:>8.3f} {counter.get('rate', 0.0):>10.0f} "
              f"{served:>8} {hist.get('p50', 0.0):>9.1f} "
              f"{hist.get('p99', 0.0):>9.1f} {hist.get('p999', 0.0):>9.1f}")
    span_s = windows[-1]["t_start_s"] + windows[-1]["duration_s"]
    print(f"total: {total_served} served over {span_s:.3f}s "
          f"({len(windows)} windows)")
    return len(windows)


def report_querylog(path, top):
    entries = load_jsonl(path, "query-log")
    for i, e in enumerate(entries):
        validate_entry(path, i, e)
    slow = sum(1 for e in entries if e["slow"])
    failed = sum(1 for e in entries if not e["ok"])
    print(f"\nQuery log: {len(entries)} exemplars from {path} "
          f"({slow} slow, {failed} failed)")
    worst = sorted(entries, key=lambda e: e["e2e_us"], reverse=True)[:top]
    print(f"top {len(worst)} slowest:")
    for e in worst:
        flags = "".join(c for c, on in (("S", e["slow"]),
                                        ("H", e["head_sampled"]),
                                        ("!", not e["ok"])) if on)
        print(f"  trace {e['trace_id']} [{e['kind']} param={e['param']} "
              f"batch={e['batch_size']}{' ' + flags if flags else ''}] "
              f"e2e {e['e2e_us']:.1f}us = queue {e['queue_us']:.1f} "
              f"+ service {e['service_us']:.1f}")
        breakdown = "  +- "
        parts = []
        for s in e["spans"]:
            label = s["phase"]
            if "detail" in s:
                label += f"({s['detail']})"
            parts.append(f"{label} {s['dur_us']:.1f}us")
        print(breakdown + " | ".join(parts))
    return len(entries)


def main(argv):
    timeseries = None
    querylog = None
    top = 5
    qps_counter = "serving.accepted"
    latency_hist = "serving.e2e_us"
    for arg in argv[1:]:
        if arg.startswith("--timeseries="):
            timeseries = arg.split("=", 1)[1]
        elif arg.startswith("--querylog="):
            querylog = arg.split("=", 1)[1]
        elif arg.startswith("--top="):
            top = int(arg.split("=", 1)[1])
        elif arg.startswith("--qps-counter="):
            qps_counter = arg.split("=", 1)[1]
        elif arg.startswith("--latency-hist="):
            latency_hist = arg.split("=", 1)[1]
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            fail(f"unknown argument {arg!r} (see --help)")
    if timeseries is None and querylog is None:
        fail("need --timeseries= and/or --querylog= (see --help)")
    if timeseries is not None:
        report_timeseries(timeseries, qps_counter, latency_hist)
    if querylog is not None:
        report_querylog(querylog, top)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        sys.exit(0)  # output piped into head etc.
